//! Cluster assembly: partition → shards → transport → coordinator.
//!
//! [`DistCluster`] wires the pieces into a running doc-partitioned search
//! tier: N shard servers (in-process threads or forked child processes),
//! an optional chaos proxy per shard ([`ajax_net::FaultProxy`]), a
//! [`TcpTransport`] connected through the proxies, and a coordinating
//! [`ShardServer`] that keeps all of PR 1's edge logic — admission, cache,
//! deadlines, degraded partial results — while evaluation happens across
//! the wire.
//!
//! Partitioning is contiguous ([`partition_models`]): the first
//! `⌈n/N⌉` models land on shard 0, and so on — the same document
//! partitioning discipline as the in-process broker. Because merge-time
//! global idf is computed from exact integer sums and per-document scores
//! are purely local, the merged ranking is bit-identical for **every**
//! shard count, which the equivalence tests pin down.

use crate::error::DistError;
use crate::shard::ShardHandle;
use crate::transport::{ShardEndpoint, TcpTransport, TcpTransportConfig};
use ajax_crawl::model::AppModel;
use ajax_index::{build_index_parallel, persist, InvertedIndex, RankWeights};
use ajax_net::{FaultProxy, ProxyConfig};
use ajax_obs::SpanLog;
use ajax_serve::{ServeConfig, ShardServer};
use std::io::BufRead;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Splits `models` into `shards` contiguous chunks and builds one inverted
/// index per chunk. Empty tail shards (more shards than models) get empty
/// indexes — a legal, if silly, deployment.
pub fn partition_models(
    models: &[AppModel],
    pagerank: impl Fn(&str) -> Option<f64>,
    shards: usize,
    max_states: Option<usize>,
) -> Vec<InvertedIndex> {
    let shards = shards.max(1);
    let chunk = models.len().div_ceil(shards).max(1);
    let mut partitions: Vec<InvertedIndex> = models
        .chunks(chunk)
        .map(|slice| {
            let refs: Vec<(&AppModel, Option<f64>)> =
                slice.iter().map(|m| (m, pagerank(&m.url))).collect();
            build_index_parallel(&refs, max_states, 4)
        })
        .collect();
    while partitions.len() < shards {
        partitions.push(InvertedIndex::default());
    }
    partitions
}

/// How to run a cluster.
#[derive(Default)]
pub struct ClusterConfig {
    /// Coordinator (edge-logic) configuration.
    pub serve: ServeConfig,
    /// Hedge delay for slow shards; `None` disables hedging.
    pub hedge_after_micros: Option<u64>,
    /// Chaos proxies: when set, each shard gets a [`FaultProxy`] in front of
    /// it driven by this config. The plan's URL patterns see
    /// `fault://shard<i>/accept` and `fault://shard<i>/reply`, so rules can
    /// target one shard (`FaultRule::matching("shard1/reply", …)`).
    pub chaos: Option<ProxyConfig>,
}

enum ShardRuntime {
    /// In-process listener thread; `None` after a deliberate kill.
    Thread {
        handle: Option<ShardHandle>,
        index: Arc<InvertedIndex>,
        addr: SocketAddr,
    },
    /// A forked `ajax-search shard` child.
    Process {
        child: std::process::Child,
        index_path: PathBuf,
        addr: SocketAddr,
    },
}

impl Drop for ShardRuntime {
    /// Reaps the shard wherever the runtime is dropped — including the
    /// error paths of [`DistCluster::launch_processes`] and
    /// [`DistCluster::assemble`], where earlier-spawned children would
    /// otherwise outlive the failed launch as orphans. Kill and wait are
    /// both idempotent, so running after [`DistCluster::shutdown`] is safe.
    fn drop(&mut self) {
        match self {
            ShardRuntime::Thread { handle, .. } => {
                if let Some(mut h) = handle.take() {
                    h.kill();
                }
            }
            ShardRuntime::Process {
                child, index_path, ..
            } => {
                let _ = child.kill();
                let _ = child.wait();
                let _ = std::fs::remove_file(index_path);
            }
        }
    }
}

/// Holds a freshly spawned shard child until its banner is parsed; on any
/// failure before the hand-off to [`ShardRuntime`], drop kills + waits the
/// child and removes its index file, so a half-launched cluster never
/// leaves orphan processes or temp indexes behind.
struct SpawnGuard {
    child: Option<std::process::Child>,
    index_path: PathBuf,
}

impl SpawnGuard {
    fn into_parts(mut self) -> (std::process::Child, PathBuf) {
        (
            self.child.take().expect("guard armed"),
            std::mem::take(&mut self.index_path),
        )
    }
}

impl Drop for SpawnGuard {
    fn drop(&mut self) {
        if let Some(child) = &mut self.child {
            let _ = child.kill();
            let _ = child.wait();
        }
        if !self.index_path.as_os_str().is_empty() {
            let _ = std::fs::remove_file(&self.index_path);
        }
    }
}

/// A running distributed search tier. `server` is the coordinator — query
/// it exactly like a single-process [`ShardServer`].
pub struct DistCluster {
    pub server: ShardServer,
    shards: Vec<ShardRuntime>,
    proxies: Vec<FaultProxy>,
    hedges: Arc<AtomicU64>,
}

impl DistCluster {
    /// Launches shards as in-process listener threads (tests, benches).
    pub fn launch_threads(
        partitions: Vec<InvertedIndex>,
        weights: RankWeights,
        config: ClusterConfig,
    ) -> Result<Self, DistError> {
        let trace = config.serve.trace.then(|| {
            Arc::new(Mutex::new(SpanLog::with_capacity(
                ajax_obs::DEFAULT_CAPACITY,
            )))
        });
        let mut shards = Vec::with_capacity(partitions.len());
        for (i, partition) in partitions.into_iter().enumerate() {
            let index = Arc::new(partition);
            let handle = ShardHandle::spawn(Arc::clone(&index), i, 0, trace.clone())?;
            let addr = handle.addr;
            shards.push(ShardRuntime::Thread {
                handle: Some(handle),
                index,
                addr,
            });
        }
        Self::assemble(shards, weights, config, trace)
    }

    /// Launches shards as child processes of `exe` (the `ajax-search`
    /// binary): each gets its partition saved to a temp file and is spawned
    /// as `exe shard --index FILE --shard-id I --port P`. With
    /// `base_port = None` children bind ephemeral ports and report them on
    /// stdout (`LISTENING <addr>`); with `Some(p)` shard `i` binds `p + i`.
    pub fn launch_processes(
        exe: &Path,
        partitions: Vec<InvertedIndex>,
        weights: RankWeights,
        config: ClusterConfig,
        base_port: Option<u16>,
    ) -> Result<Self, DistError> {
        let mut shards = Vec::with_capacity(partitions.len());
        for (i, partition) in partitions.into_iter().enumerate() {
            let index_path = std::env::temp_dir().join(format!(
                "ajax-dist-{}-shard{}.json",
                std::process::id(),
                i
            ));
            persist::save_index(&index_path, &partition)
                .map_err(|e| DistError::Spawn(format!("save shard {i} index: {e}")))?;
            let port = base_port.map_or(0, |p| p + i as u16);
            let mut guard = SpawnGuard {
                child: None,
                index_path,
            };
            guard.child = Some(
                std::process::Command::new(exe)
                    .arg("shard")
                    .arg("--index")
                    .arg(&guard.index_path)
                    .arg("--shard-id")
                    .arg(i.to_string())
                    .arg("--port")
                    .arg(port.to_string())
                    .stdout(std::process::Stdio::piped())
                    .stderr(std::process::Stdio::inherit())
                    .spawn()
                    .map_err(|e| DistError::Spawn(format!("exec {}: {e}", exe.display())))?,
            );
            // The child prints "LISTENING <addr>" once bound.
            let stdout = guard
                .child
                .as_mut()
                .expect("guard armed")
                .stdout
                .take()
                .ok_or_else(|| DistError::Spawn("child stdout not captured".to_string()))?;
            let mut line = String::new();
            std::io::BufReader::new(stdout)
                .read_line(&mut line)
                .map_err(|e| DistError::Spawn(format!("read shard {i} banner: {e}")))?;
            let addr: SocketAddr = line
                .trim()
                .strip_prefix("LISTENING ")
                .and_then(|a| a.parse().ok())
                .ok_or_else(|| {
                    DistError::Spawn(format!(
                        "shard {i} did not report its address (got {line:?})"
                    ))
                })?;
            let (child, index_path) = guard.into_parts();
            shards.push(ShardRuntime::Process {
                child,
                index_path,
                addr,
            });
        }
        Self::assemble(shards, weights, config, None)
    }

    fn assemble(
        shards: Vec<ShardRuntime>,
        weights: RankWeights,
        config: ClusterConfig,
        trace: Option<Arc<Mutex<SpanLog>>>,
    ) -> Result<Self, DistError> {
        let mut proxies = Vec::new();
        let mut endpoints = Vec::with_capacity(shards.len());
        for (i, shard) in shards.iter().enumerate() {
            let direct = shard_addr(shard);
            let addr = match &config.chaos {
                Some(proxy_config) => {
                    let proxy =
                        FaultProxy::spawn(direct, format!("shard{i}"), proxy_config.clone())
                            .map_err(DistError::Io)?;
                    let addr = proxy.addr;
                    proxies.push(proxy);
                    addr
                }
                None => direct,
            };
            endpoints.push(ShardEndpoint {
                addr,
                direct_addr: direct,
            });
        }
        let transport = TcpTransport::connect(
            endpoints,
            TcpTransportConfig {
                hedge_after_micros: config.hedge_after_micros,
                trace: trace.clone(),
            },
        )?;
        let hedges = transport.hedge_counter();
        let server = ShardServer::from_transport(Box::new(transport), weights, config.serve, trace);
        Ok(Self {
            server,
            shards,
            proxies,
            hedges,
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// OS pids of process-mode shard children (empty in thread mode) —
    /// lets operators and tests verify the children are reaped.
    pub fn process_pids(&self) -> Vec<u32> {
        self.shards
            .iter()
            .filter_map(|s| match s {
                ShardRuntime::Process { child, .. } => Some(child.id()),
                ShardRuntime::Thread { .. } => None,
            })
            .collect()
    }

    /// Hedge requests issued so far.
    pub fn hedges_fired(&self) -> u64 {
        self.hedges.load(Ordering::Relaxed)
    }

    /// Crashes shard `i` (thread mode): the listener stops and every live
    /// connection is severed, exactly like a killed process.
    pub fn kill_shard(&mut self, i: usize) {
        if let Some(ShardRuntime::Thread { handle, .. }) = self.shards.get_mut(i) {
            if let Some(mut h) = handle.take() {
                h.kill();
            }
        }
    }

    /// Restarts a killed shard (thread mode) on its original port, serving
    /// the same partition. The coordinator's reconnect backoff re-adopts it.
    pub fn restart_shard(&mut self, i: usize) -> Result<(), DistError> {
        if let Some(ShardRuntime::Thread {
            handle,
            index,
            addr,
        }) = self.shards.get_mut(i)
        {
            if handle.is_none() {
                *handle = Some(ShardHandle::spawn(Arc::clone(index), i, addr.port(), None)?);
            }
        }
        Ok(())
    }

    /// Stops the coordinator, proxies, and shards, in that order.
    pub fn shutdown(&mut self) {
        self.server.shutdown();
        for proxy in &mut self.proxies {
            proxy.shutdown();
        }
        for shard in &mut self.shards {
            match shard {
                ShardRuntime::Thread { handle, .. } => {
                    if let Some(mut h) = handle.take() {
                        h.kill();
                    }
                }
                ShardRuntime::Process {
                    child, index_path, ..
                } => {
                    let _ = child.kill();
                    let _ = child.wait();
                    let _ = std::fs::remove_file(index_path);
                }
            }
        }
    }
}

impl Drop for DistCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn shard_addr(shard: &ShardRuntime) -> SocketAddr {
    match shard {
        ShardRuntime::Thread { addr, .. } | ShardRuntime::Process { addr, .. } => *addr,
    }
}
