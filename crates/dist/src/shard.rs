//! The shard server: one index partition behind a TCP listener.
//!
//! A shard is deliberately dumb — it owns no admission control, no cache,
//! no deadlines. It accepts connections, answers `Ping` with its identity,
//! and evaluates `Eval` requests against its partition with
//! [`ajax_index::eval_shard_with_scratch`], returning local results plus
//! the per-term document frequencies the coordinator needs for merge-time
//! global idf. All policy lives coordinator-side, exactly like the
//! single-process [`ajax_serve::ShardServer`] keeps policy out of its
//! worker pools.
//!
//! Two deployment shapes share this code:
//!
//! * **process mode** — `ajax-search shard --index FILE` binds a listener
//!   ([`bind_shard`]) and calls [`serve_shard`], which blocks for the
//!   process' lifetime;
//! * **thread mode** — [`ShardHandle::spawn`] runs the same accept loop on
//!   a background thread in the current process: what tests and benches use,
//!   and what makes deterministic crash injection ([`ShardHandle::kill`])
//!   possible.
//!
//! Requests on one connection are evaluated sequentially in the connection
//! thread (mirroring one worker per shard); separate connections — e.g. a
//! coordinator's hedge path — evaluate concurrently on an immutable
//! `Arc<InvertedIndex>` snapshot.

use crate::error::DistError;
use crate::proto::{
    read_message, write_message, EvalReply, Message, ShardInfo, WireError, PROTO_VERSION,
};
use ajax_index::{eval_shard_with_scratch, InvertedIndex, ScoreScratch};
use ajax_obs::{AttrValue, SpanLog};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Binds the shard listener, translating failures (notably address-in-use)
/// into actionable [`DistError::Bind`] messages instead of panicking.
pub fn bind_shard(host: &str, port: u16) -> Result<TcpListener, DistError> {
    TcpListener::bind((host, port)).map_err(|source| DistError::Bind {
        host: host.to_string(),
        port,
        source,
    })
}

/// Everything a connection thread needs.
struct ShardCtx {
    index: Arc<InvertedIndex>,
    shard_id: usize,
    shutdown: Arc<AtomicBool>,
    /// Clones of live connection streams, so `kill` can sever them.
    conns: Arc<Mutex<Vec<TcpStream>>>,
    /// Optional shard-side flight recorder (thread mode only): `rpc.recv` /
    /// `shard.eval` / `rpc.send` spans on track `shard_id + 1`, timestamps
    /// in µs since `epoch`.
    trace: Option<Arc<Mutex<SpanLog>>>,
    epoch: Instant,
}

impl ShardCtx {
    fn record_span(&self, name: &'static str, start: u64, end: u64, id: u64) {
        if let Some(trace) = &self.trace {
            let mut log = trace.lock().expect("shard trace lock");
            log.set_track(self.shard_id as u32 + 1);
            log.push(
                name,
                start,
                end,
                vec![
                    ("shard", AttrValue::U64(self.shard_id as u64)),
                    ("id", AttrValue::U64(id)),
                ],
            );
        }
    }

    fn now(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// Serves connections until the process dies (process mode). The listener
/// should come from [`bind_shard`].
pub fn serve_shard(listener: TcpListener, index: Arc<InvertedIndex>, shard_id: usize) {
    let ctx = Arc::new(ShardCtx {
        index,
        shard_id,
        shutdown: Arc::new(AtomicBool::new(false)),
        conns: Arc::new(Mutex::new(Vec::new())),
        trace: None,
        epoch: Instant::now(),
    });
    accept_loop(listener, &ctx);
}

fn accept_loop(listener: TcpListener, ctx: &Arc<ShardCtx>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            return;
        };
        if ctx.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let _ = stream.set_nodelay(true);
        if let Ok(clone) = stream.try_clone() {
            ctx.conns.lock().unwrap().push(clone);
        }
        let ctx = Arc::clone(ctx);
        std::thread::spawn(move || connection_loop(stream, &ctx));
    }
}

fn connection_loop(mut stream: TcpStream, ctx: &ShardCtx) {
    let mut scratch = ScoreScratch::default();
    loop {
        let recv_start = ctx.now();
        let msg = match read_message(&mut stream) {
            Ok(msg) => msg,
            // Peer hung up or sent garbage; either way this connection is
            // done. The coordinator reconnects with backoff if it cares.
            Err(_) => return,
        };
        match msg {
            Message::Ping => {
                let info = ShardInfo {
                    shard_id: ctx.shard_id as u64,
                    proto_version: PROTO_VERSION,
                    total_states: ctx.index.total_states,
                    index_bytes: ctx.index.approx_bytes() as u64,
                    term_count: ctx.index.term_count() as u64,
                };
                if write_message(&mut stream, &Message::Pong(info)).is_err() {
                    return;
                }
            }
            Message::Eval(req) => {
                ctx.record_span("rpc.recv", recv_start, ctx.now(), req.id);
                let eval_start = ctx.now();
                let evaluated = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    eval_shard_with_scratch(
                        &ctx.index,
                        ctx.shard_id,
                        &req.query,
                        &req.weights,
                        &mut scratch,
                    )
                }));
                let reply = match evaluated {
                    Ok((results, stats)) => {
                        ctx.record_span("shard.eval", eval_start, ctx.now(), req.id);
                        Message::Reply(EvalReply {
                            id: req.id,
                            results,
                            stats,
                        })
                    }
                    Err(_) => {
                        // The scratch may be poisoned mid-panic; start fresh.
                        scratch = ScoreScratch::default();
                        Message::Error(WireError {
                            id: req.id,
                            message: "shard evaluation panicked".to_string(),
                        })
                    }
                };
                let send_start = ctx.now();
                if write_message(&mut stream, &reply).is_err() {
                    return;
                }
                ctx.record_span("rpc.send", send_start, ctx.now(), req.id);
            }
            // A shard never receives replies/pongs; treat as protocol abuse.
            Message::Reply(_) | Message::Pong(_) | Message::Error(_) => return,
        }
    }
}

/// An in-process shard server (thread mode) with deterministic crash
/// injection for chaos tests.
pub struct ShardHandle {
    /// Where the shard listens (always 127.0.0.1).
    pub addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    accept: Option<JoinHandle<()>>,
}

impl ShardHandle {
    /// Binds `127.0.0.1:port` (0 for ephemeral) and serves `index` as shard
    /// `shard_id` on a background thread. `trace` enables shard-side
    /// `rpc.recv` / `shard.eval` / `rpc.send` spans.
    pub fn spawn(
        index: Arc<InvertedIndex>,
        shard_id: usize,
        port: u16,
        trace: Option<Arc<Mutex<SpanLog>>>,
    ) -> Result<Self, DistError> {
        let listener = bind_shard("127.0.0.1", port)?;
        let addr = listener.local_addr()?;
        let ctx = Arc::new(ShardCtx {
            index,
            shard_id,
            shutdown: Arc::new(AtomicBool::new(false)),
            conns: Arc::new(Mutex::new(Vec::new())),
            trace,
            epoch: Instant::now(),
        });
        let shutdown = Arc::clone(&ctx.shutdown);
        let conns = Arc::clone(&ctx.conns);
        let accept = std::thread::Builder::new()
            .name(format!("ajax-dist-shard{shard_id}"))
            .spawn(move || accept_loop(listener, &ctx))
            .map_err(|e| DistError::Spawn(e.to_string()))?;
        Ok(Self {
            addr,
            shutdown,
            conns,
            accept: Some(accept),
        })
    }

    /// Simulates a crash: stop accepting and sever every live connection.
    /// Clients see dead sockets mid-conversation, exactly like a killed
    /// process. Idempotent. The port is released, so a replacement shard
    /// can be spawned on the same address to test reconnect-with-backoff.
    pub fn kill(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for conn in self.conns.lock().unwrap().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ShardHandle {
    fn drop(&mut self) {
        self.kill();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::EvalRequest;
    use ajax_crawl::model::AppModel;
    use ajax_index::{IndexBuilder, Query, RankWeights};

    fn test_index() -> Arc<InvertedIndex> {
        let mut b = IndexBuilder::new();
        let mut m = AppModel::new("http://x/1");
        m.add_state(1, "wow great video content".to_string(), None);
        m.add_state(2, "more dance content".to_string(), None);
        b.add_model(&m, Some(0.3));
        Arc::new(b.build())
    }

    #[test]
    fn shard_answers_ping_and_eval() {
        let index = test_index();
        let mut shard = ShardHandle::spawn(Arc::clone(&index), 3, 0, None).unwrap();
        let mut conn = TcpStream::connect(shard.addr).unwrap();

        write_message(&mut conn, &Message::Ping).unwrap();
        let Message::Pong(info) = read_message(&mut conn).unwrap() else {
            panic!("expected pong")
        };
        assert_eq!(info.shard_id, 3);
        assert_eq!(info.proto_version, PROTO_VERSION);
        assert_eq!(info.total_states, index.total_states);

        write_message(
            &mut conn,
            &Message::Eval(EvalRequest {
                id: 77,
                query: Query::parse("wow"),
                weights: RankWeights::default(),
            }),
        )
        .unwrap();
        let Message::Reply(reply) = read_message(&mut conn).unwrap() else {
            panic!("expected reply")
        };
        assert_eq!(reply.id, 77);
        assert_eq!(reply.results.len(), 1);
        assert_eq!(reply.stats.df, vec![1]);

        shard.kill();
        shard.kill(); // idempotent
    }

    #[test]
    fn kill_severs_live_connections_and_frees_the_port() {
        let index = test_index();
        let mut shard = ShardHandle::spawn(Arc::clone(&index), 0, 0, None).unwrap();
        let addr = shard.addr;
        let mut conn = TcpStream::connect(addr).unwrap();
        write_message(&mut conn, &Message::Ping).unwrap();
        let _ = read_message(&mut conn).unwrap();

        shard.kill();
        // The severed connection now fails.
        let dead = write_message(&mut conn, &Message::Ping).and_then(|_| read_message(&mut conn));
        assert!(dead.is_err(), "killed shard must sever connections");

        // A replacement shard can take over the same port.
        let replacement = ShardHandle::spawn(index, 0, addr.port(), None).unwrap();
        assert_eq!(replacement.addr, addr);
        let mut conn = TcpStream::connect(addr).unwrap();
        write_message(&mut conn, &Message::Ping).unwrap();
        assert!(matches!(read_message(&mut conn).unwrap(), Message::Pong(_)));
    }

    #[test]
    fn concurrent_connections_evaluate_independently() {
        let index = test_index();
        let shard = Arc::new(ShardHandle::spawn(index, 1, 0, None).unwrap());
        let addr = shard.addr;
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut conn = TcpStream::connect(addr).unwrap();
                    write_message(
                        &mut conn,
                        &Message::Eval(EvalRequest {
                            id: i,
                            query: Query::parse("content"),
                            weights: RankWeights::default(),
                        }),
                    )
                    .unwrap();
                    let Message::Reply(reply) = read_message(&mut conn).unwrap() else {
                        panic!("expected reply")
                    };
                    assert_eq!(reply.id, i);
                    reply.results.len()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 2, "both states contain 'content'");
        }
    }
}
