//! # ajax-dist
//!
//! Distributed serving: the doc-partitioned query processing of thesis
//! §6.4–6.5 promoted from threads in one process (`ajax-serve`) to
//! **independent shard processes exchanging small messages** over localhost
//! TCP.
//!
//! * [`proto`] — the length-prefixed binary frame format; JSON payloads
//!   with bit-exact `f64` round-tripping, correlation ids for pipelining;
//! * [`shard`] — the shard server: one index partition behind a listener,
//!   evaluating queries with `eval_shard` and returning local results plus
//!   the `(|Idx|, df)` stats for merge-time global idf;
//! * [`transport`] — the coordinator's [`TcpTransport`], an
//!   `ajax_serve::ShardTransport`: pipelined query shipping, per-shard
//!   reader threads, reconnect with exponential backoff, and hedged
//!   requests for slow shards over a fresh direct connection;
//! * [`cluster`] — assembly: contiguous model partitioning, thread- or
//!   process-mode shard launch, optional [`ajax_net::FaultProxy`] chaos
//!   layer per shard, and a coordinating `ShardServer` carrying all the
//!   single-process edge logic.
//!
//! The load-bearing invariant, inherited from the in-process path and
//! enforced by the equivalence tests: for any shard count, the coordinator's
//! merged ranking is **bit-identical** to single-process evaluation — global
//! idf comes from exact integer sums (order-free), per-document base scores
//! are shard-local, and the wire preserves every float bit.

pub mod cluster;
pub mod error;
pub mod proto;
pub mod shard;
pub mod transport;

pub use cluster::{partition_models, ClusterConfig, DistCluster};
pub use error::DistError;
pub use shard::{bind_shard, serve_shard, ShardHandle};
pub use transport::{ShardEndpoint, TcpTransport, TcpTransportConfig};
