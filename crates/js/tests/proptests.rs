//! Property tests for the JS substrate: totality of the pipeline and
//! semantic invariants checked against a reference evaluator.

use ajax_js::{parse_program, Interpreter, NoopHook, NullHost, Value};
use proptest::prelude::*;

fn eval(src: &str) -> Result<Value, ajax_js::JsError> {
    let mut interp = Interpreter::with_fuel(200_000);
    interp.eval(src, &mut NullHost, &mut NoopHook)
}

/// A tiny generator of arithmetic expressions with a reference evaluation.
#[derive(Debug, Clone)]
enum Arith {
    Num(i32),
    Add(Box<Arith>, Box<Arith>),
    Sub(Box<Arith>, Box<Arith>),
    Mul(Box<Arith>, Box<Arith>),
}

impl Arith {
    fn to_js(&self) -> String {
        match self {
            Arith::Num(n) => {
                if *n < 0 {
                    format!("({n})")
                } else {
                    n.to_string()
                }
            }
            Arith::Add(a, b) => format!("({} + {})", a.to_js(), b.to_js()),
            Arith::Sub(a, b) => format!("({} - {})", a.to_js(), b.to_js()),
            Arith::Mul(a, b) => format!("({} * {})", a.to_js(), b.to_js()),
        }
    }

    fn reference(&self) -> f64 {
        match self {
            Arith::Num(n) => f64::from(*n),
            Arith::Add(a, b) => a.reference() + b.reference(),
            Arith::Sub(a, b) => a.reference() - b.reference(),
            Arith::Mul(a, b) => a.reference() * b.reference(),
        }
    }
}

fn arith() -> impl Strategy<Value = Arith> {
    let leaf = (-1000i32..1000).prop_map(Arith::Num);
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Arith::Mul(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    /// Lexer + parser never panic on arbitrary input.
    #[test]
    fn parser_is_total(src in "\\PC*") {
        let _ = parse_program(&src);
    }

    /// Same, biased toward JS-shaped input.
    #[test]
    fn parser_total_on_jsish(src in "(var |function |if|\\(|\\)|\\{|\\}|;|=|\\+|[a-z]{1,4}|[0-9]{1,3}|'[a-z]*'| ){0,40}") {
        let _ = parse_program(&src);
    }

    /// The interpreter never panics even when parsing succeeds on weird
    /// programs; it returns a value or an error within its fuel budget.
    #[test]
    fn interpreter_is_total_on_jsish(src in "(var a=1;|a\\+\\+;|a=a\\+2;|if\\(a\\)a=0;|while\\(a>9\\)a=0;|f\\(\\);|function f\\(\\)\\{a=5;\\}){0,12}") {
        let _ = eval(&src);
    }

    /// Arithmetic agrees with a reference evaluator.
    #[test]
    fn arithmetic_matches_reference(expr in arith()) {
        let result = eval(&expr.to_js()).expect("arithmetic evaluates");
        let expected = expr.reference();
        match result {
            Value::Num(n) => prop_assert!(
                (n - expected).abs() < 1e-6,
                "{} => {n} != {expected}", expr.to_js()
            ),
            other => prop_assert!(false, "non-numeric result {other:?}"),
        }
    }

    /// String concatenation length is additive for plain ASCII strings.
    #[test]
    fn concat_lengths(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
        let result = eval(&format!("('{a}' + '{b}').length")).unwrap();
        prop_assert_eq!(result, Value::Num((a.len() + b.len()) as f64));
    }

    /// Loops compute sums correctly (Gauss check).
    #[test]
    fn loop_sum(n in 0u32..200) {
        let result = eval(&format!(
            "var s = 0; for (var i = 1; i <= {n}; i++) s += i; s"
        )).unwrap();
        prop_assert_eq!(result, Value::Num(f64::from(n * (n + 1) / 2)));
    }

    /// Snapshot/restore is an exact inverse for arbitrary globals.
    #[test]
    fn snapshot_restore_roundtrip(values in proptest::collection::vec(-100i32..100, 1..6)) {
        let mut interp = Interpreter::new();
        for (i, v) in values.iter().enumerate() {
            interp.eval(&format!("var g{i} = {v};"), &mut NullHost, &mut NoopHook).unwrap();
        }
        let snap = interp.snapshot_globals();
        for i in 0..values.len() {
            interp.eval(&format!("g{i} = g{i} * 3 + 1;"), &mut NullHost, &mut NoopHook).unwrap();
        }
        interp.restore_globals(&snap);
        for (i, v) in values.iter().enumerate() {
            let got = interp.eval(&format!("g{i}"), &mut NullHost, &mut NoopHook).unwrap();
            prop_assert_eq!(got, Value::Num(f64::from(*v)));
        }
    }

    /// Fuel always terminates unbounded loops with the right error kind.
    #[test]
    fn fuel_terminates(fuel in 100u64..5_000) {
        let mut interp = Interpreter::with_fuel(fuel);
        let err = interp
            .eval("while (true) { var x = 1; }", &mut NullHost, &mut NoopHook)
            .unwrap_err();
        prop_assert_eq!(err.kind, ajax_js::JsErrorKind::FuelExhausted);
        prop_assert!(interp.steps() <= fuel + 2);
    }
}
