//! Abstract DOM locations: the value lattice of the read/write-set
//! analysis in [`crate::effects`].
//!
//! A handler's effect on the document is abstracted as a set of
//! [`AbsLoc`]s — which element ids it may touch. Three precision levels
//! form a small lattice:
//!
//! ```text
//!                Any                (⊤ — unknown id)
//!             /   |   \
//!     Prefix("a") … Prefix("row_")  (id starts with a constant prefix,
//!         /  \                       from `'row_' + i` concatenation)
//!   Id("a1") Id("a2") …             (one concrete element id)
//! ```
//!
//! `Id(x) ⊑ Prefix(p)` iff `x` starts with `p`, and everything is below
//! `Any`. [`LocSet`] keeps a *normalized* antichain of locations (no
//! member covers another), so structurally equal effect sets compare
//! equal regardless of insertion order — which the handler-equivalence
//! classes in `ajax-crawl` rely on.
//!
//! Overlap ([`AbsLoc::may_overlap`]) is purely string-level: two
//! locations may denote the same element iff one's id language
//! intersects the other's. Document *containment* (an `innerHTML` write
//! to an ancestor destroys descendant elements) is not visible at this
//! level; the crawl planner refines overlap with the page's id-ancestry
//! relation before using it for commutativity.

use std::collections::BTreeSet;
use std::fmt;

/// One abstract DOM location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum AbsLoc {
    /// A single concrete element id.
    Id(String),
    /// Every id starting with this constant prefix (the static residue of
    /// `'prefix' + dynamicPart` id construction).
    Prefix(String),
    /// Unknown: any element in the document.
    Any,
}

impl AbsLoc {
    /// True when the two locations may denote the same element id.
    pub fn may_overlap(&self, other: &AbsLoc) -> bool {
        match (self, other) {
            (AbsLoc::Any, _) | (_, AbsLoc::Any) => true,
            (AbsLoc::Id(a), AbsLoc::Id(b)) => a == b,
            (AbsLoc::Id(a), AbsLoc::Prefix(p)) | (AbsLoc::Prefix(p), AbsLoc::Id(a)) => {
                a.starts_with(p.as_str())
            }
            (AbsLoc::Prefix(a), AbsLoc::Prefix(b)) => {
                a.starts_with(b.as_str()) || b.starts_with(a.as_str())
            }
        }
    }

    /// Partial order: every id denoted by `other` is also denoted by
    /// `self` (`other ⊑ self`).
    pub fn covers(&self, other: &AbsLoc) -> bool {
        match (self, other) {
            (AbsLoc::Any, _) => true,
            (_, AbsLoc::Any) => false,
            (AbsLoc::Id(a), AbsLoc::Id(b)) => a == b,
            (AbsLoc::Prefix(p), AbsLoc::Id(b)) => b.starts_with(p.as_str()),
            (AbsLoc::Prefix(p), AbsLoc::Prefix(q)) => q.starts_with(p.as_str()),
            (AbsLoc::Id(_), AbsLoc::Prefix(_)) => false,
        }
    }
}

impl fmt::Display for AbsLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbsLoc::Id(id) => write!(f, "#{id}"),
            AbsLoc::Prefix(p) => write!(f, "#{p}*"),
            AbsLoc::Any => write!(f, "*"),
        }
    }
}

/// A normalized set of abstract locations: an antichain under
/// [`AbsLoc::covers`], deterministically ordered.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct LocSet {
    locs: BTreeSet<AbsLoc>,
}

impl LocSet {
    /// The empty set (⊥ — touches nothing).
    pub fn new() -> Self {
        LocSet::default()
    }

    /// The unbounded set (⊤ — may touch anything).
    pub fn any() -> Self {
        let mut s = LocSet::new();
        s.insert(AbsLoc::Any);
        s
    }

    pub fn is_empty(&self) -> bool {
        self.locs.is_empty()
    }

    /// True when the set contains `Any` (and is therefore `{Any}`).
    pub fn is_unbounded(&self) -> bool {
        self.locs.contains(&AbsLoc::Any)
    }

    pub fn len(&self) -> usize {
        self.locs.len()
    }

    pub fn iter(&self) -> impl Iterator<Item = &AbsLoc> {
        self.locs.iter()
    }

    /// Inserts a location, keeping the antichain invariant: a location
    /// already covered by a member is dropped, and members the new
    /// location covers are removed.
    pub fn insert(&mut self, loc: AbsLoc) {
        if self.locs.iter().any(|l| l.covers(&loc)) {
            return;
        }
        self.locs.retain(|l| !loc.covers(l));
        self.locs.insert(loc);
    }

    /// Unions `other` into `self`.
    pub fn union(&mut self, other: &LocSet) {
        for loc in &other.locs {
            self.insert(loc.clone());
        }
    }

    /// True when some location of `self` may denote the same element as
    /// some location of `other`. Both empty sets overlap nothing.
    pub fn overlaps(&self, other: &LocSet) -> bool {
        self.locs
            .iter()
            .any(|a| other.locs.iter().any(|b| a.may_overlap(b)))
    }

    /// Widens the set to `Any` once it outgrows `cap` members — the
    /// termination backstop of the interprocedural fixpoint.
    pub fn widen(&mut self, cap: usize) {
        if self.locs.len() > cap {
            self.locs.clear();
            self.locs.insert(AbsLoc::Any);
        }
    }

    /// Deterministic rendering for reports (`#id`, `#prefix*`, `*`).
    pub fn render(&self) -> Vec<String> {
        self.locs.iter().map(|l| l.to_string()).collect()
    }
}

impl FromIterator<AbsLoc> for LocSet {
    fn from_iter<T: IntoIterator<Item = AbsLoc>>(iter: T) -> Self {
        let mut s = LocSet::new();
        for loc in iter {
            s.insert(loc);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(s: &str) -> AbsLoc {
        AbsLoc::Id(s.to_string())
    }

    fn prefix(s: &str) -> AbsLoc {
        AbsLoc::Prefix(s.to_string())
    }

    #[test]
    fn overlap_is_string_language_intersection() {
        assert!(id("hero").may_overlap(&id("hero")));
        assert!(!id("hero").may_overlap(&id("caption_1")));
        assert!(prefix("caption_").may_overlap(&id("caption_7")));
        assert!(!prefix("caption_").may_overlap(&id("hero")));
        assert!(prefix("cap").may_overlap(&prefix("caption_")));
        assert!(!prefix("caption_").may_overlap(&prefix("hero_")));
        assert!(AbsLoc::Any.may_overlap(&id("x")));
        assert!(AbsLoc::Any.may_overlap(&AbsLoc::Any));
    }

    #[test]
    fn covers_is_a_partial_order() {
        assert!(AbsLoc::Any.covers(&id("x")));
        assert!(AbsLoc::Any.covers(&prefix("x")));
        assert!(!id("x").covers(&AbsLoc::Any));
        assert!(prefix("row_").covers(&id("row_3")));
        assert!(!prefix("row_").covers(&id("col_3")));
        assert!(prefix("r").covers(&prefix("row_")));
        assert!(!prefix("row_").covers(&prefix("r")));
        assert!(!id("row_3").covers(&prefix("row_")));
    }

    #[test]
    fn insert_normalizes_to_an_antichain() {
        let mut s = LocSet::new();
        s.insert(id("row_1"));
        s.insert(id("row_2"));
        assert_eq!(s.len(), 2);
        // The prefix covers both ids: they collapse into it.
        s.insert(prefix("row_"));
        assert_eq!(s.len(), 1);
        assert_eq!(s.render(), vec!["#row_*"]);
        // A covered insert is a no-op.
        s.insert(id("row_9"));
        s.insert(prefix("row_extra"));
        assert_eq!(s.len(), 1);
        // Any swallows everything.
        s.insert(id("other"));
        s.insert(AbsLoc::Any);
        assert!(s.is_unbounded());
        assert_eq!(s.len(), 1);
        s.insert(id("late"));
        assert_eq!(s.render(), vec!["*"]);
    }

    #[test]
    fn set_overlap_and_union() {
        let a: LocSet = [id("hero"), prefix("photo_")].into_iter().collect();
        let b: LocSet = [prefix("caption_"), id("strip")].into_iter().collect();
        assert!(!a.overlaps(&b), "disjoint regions commute");
        let c: LocSet = [id("photo_3")].into_iter().collect();
        assert!(a.overlaps(&c), "prefix captures the concrete id");
        assert!(!LocSet::new().overlaps(&a), "empty overlaps nothing");
        assert!(!a.overlaps(&LocSet::new()));
        assert!(LocSet::any().overlaps(&a), "Any overlaps any non-empty set");
        assert!(!LocSet::any().overlaps(&LocSet::new()));

        let mut u = a.clone();
        u.union(&b);
        assert_eq!(u.len(), 4);
        assert!(u.overlaps(&c));
    }

    #[test]
    fn widen_collapses_past_the_cap() {
        let mut s: LocSet = (0..10).map(|i| id(&format!("cell_{i}"))).collect();
        s.widen(16);
        assert_eq!(s.len(), 10, "under the cap: untouched");
        s.widen(4);
        assert!(s.is_unbounded(), "over the cap: widened to Any");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let fwd: LocSet = [id("a"), prefix("b_"), id("b_1"), id("c")]
            .into_iter()
            .collect();
        let rev: LocSet = [id("c"), id("b_1"), prefix("b_"), id("a")]
            .into_iter()
            .collect();
        assert_eq!(fwd, rev);
        assert_eq!(fwd.render(), vec!["#a", "#c", "#b_*"]);
    }
}
