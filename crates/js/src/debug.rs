//! Debugger hooks — the stand-in for Rhino's `Debugger` / `DebugFrame`
//! interfaces that the thesis implemented as `JSDebugger` / `DebugFrameImpl`
//! (§4.4.2). The crawler's hot-node detector implements [`DebugHook`]:
//! `on_enter` is "the point where we know the name and the actual parameter
//! values of the currently executed Javascript function".

use crate::interp::FrameInfo;
use crate::value::Value;

/// What the hook wants the interpreter to do with a function call.
#[derive(Debug, Clone, PartialEq)]
pub enum EnterAction {
    /// Execute the function body normally.
    Continue,
    /// Skip the body entirely and produce `value` as the call result.
    /// (Useful for test instrumentation and replay; the hot-node path of the
    /// thesis intercepts at the XHR level instead, so the DOM fill that
    /// follows the fetch still runs.)
    ShortCircuit(Value),
}

/// Callbacks fired during interpretation.
///
/// All methods default to no-ops so implementors override only what they
/// observe.
pub trait DebugHook {
    /// A user function is about to execute. `frame` carries the function
    /// name and rendered actual arguments.
    fn on_enter(&mut self, frame: &FrameInfo) -> EnterAction {
        let _ = frame;
        EnterAction::Continue
    }

    /// A user function returned (normally or through an error).
    fn on_exit(&mut self, frame: &FrameInfo, result: Result<&Value, &crate::JsError>) {
        let _ = (frame, result);
    }

    /// A statement is about to execute inside `function_name` (empty string
    /// at top level), at source `line`.
    fn on_statement(&mut self, function_name: &str, line: u32) {
        let _ = (function_name, line);
    }
}

/// A hook that observes nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopHook;

impl DebugHook for NoopHook {}

/// A recording hook for tests and instrumentation: collects the sequence of
/// entered frames.
#[derive(Debug, Default)]
pub struct TraceHook {
    /// `(function, rendered_args)` in entry order.
    pub entered: Vec<(String, String)>,
    /// Number of statements observed.
    pub statements: u64,
}

impl DebugHook for TraceHook {
    fn on_enter(&mut self, frame: &FrameInfo) -> EnterAction {
        self.entered
            .push((frame.function.clone(), frame.rendered_args.clone()));
        EnterAction::Continue
    }

    fn on_statement(&mut self, _function_name: &str, _line: u32) {
        self.statements += 1;
    }
}
