//! # ajax-js
//!
//! An AST-walking interpreter for a JavaScript subset, standing in for the
//! Rhino engine the original *AJAX Crawl* thesis embedded. It supports the
//! language features 2008-era AJAX page scripts use:
//!
//! * `var` declarations, assignments (incl. `+=`), global + function scopes,
//! * numbers (f64), strings (with `+` concatenation), booleans, `null`,
//!   `undefined`,
//! * `if`/`else`, `while`, `for`, `break`, `continue`, `return`, blocks,
//! * top-level `function` declarations and calls (recursion allowed),
//! * host integration: native global functions, `new XMLHttpRequest()`-style
//!   host objects, method calls and property get/set on host objects
//!   (`xhr.open(...)`, `xhr.responseText`, `el.innerHTML = ...`).
//!
//! Two capabilities exist specifically because the hot-node mechanism of the
//! thesis (ch. 4) needs them:
//!
//! 1. **Call-stack introspection** — every host call receives a [`HostCtx`]
//!    exposing the current stack of frames with *rendered actual arguments*
//!    (the thesis' `StackInfo.getHotNodeInfo()`), so an `XMLHttpRequest`
//!    host object can key a hot-node cache by `(function, args)`.
//! 2. **Debugger hooks** — a [`DebugHook`] receives `on_enter`/`on_exit`/
//!    `on_statement` callbacks (the thesis' `Debugger`/`DebugFrame`
//!    implementation on Rhino, §4.4.2) and may short-circuit a call.
//!
//! Execution is metered: every statement/expression costs one *step* and a
//! configurable fuel limit terminates runaway scripts (the thesis' guard
//! against infinite loops, §3.2). The step counter doubles as the virtual
//! CPU-cost measure used by the crawl-time experiments.

pub mod absdom;
pub mod ast;
pub mod callgraph;
pub mod debug;
pub mod effects;
pub mod error;
pub mod host;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod value;

pub use absdom::{AbsLoc, LocSet};
pub use callgraph::{FunctionNode, InvocationGraph, Redefinition};
pub use debug::{DebugHook, EnterAction, NoopHook};
pub use effects::{
    Diagnostic, EffectAnalysis, EffectSummary, Lint, LocalEffects, Severity, ValueSource, XhrClass,
};
pub use error::{JsError, JsErrorKind};
pub use host::{Host, HostCtx, NullHost, ObjId};
pub use interp::{FrameInfo, GlobalsSnapshot, Interpreter};
pub use parser::parse_program;
pub use value::Value;
