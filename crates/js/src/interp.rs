//! The AST-walking interpreter.

use crate::ast::*;
use crate::debug::{DebugHook, EnterAction};
use crate::error::{JsError, JsErrorKind};
use crate::host::{Host, HostCtx};
use crate::parser::parse_program;
use crate::value::Value;
use std::collections::HashMap;
use std::rc::Rc;

/// Default fuel (steps) budget — enough for any sane page script, small
/// enough to terminate `while(true){}` quickly.
pub const DEFAULT_FUEL: u64 = 2_000_000;
/// Default maximum call depth.
pub const DEFAULT_MAX_DEPTH: usize = 100;

/// A call-stack frame as exposed to hosts and debug hooks: the function name
/// plus its actual arguments rendered to source-ish text — the thesis'
/// `StackInfo` payload.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameInfo {
    pub function: String,
    /// e.g. `"/comments?v=3&p=2", true`
    pub rendered_args: String,
    pub line: u32,
}

impl FrameInfo {
    /// The `function(args)` key used for hot-node cache lookups.
    pub fn key(&self) -> String {
        format!("{}({})", self.function, self.rendered_args)
    }
}

/// A snapshot of interpreter global state, used by the crawler's rollback.
#[derive(Debug, Clone)]
pub struct GlobalsSnapshot {
    globals: HashMap<String, Value>,
    functions: HashMap<String, Rc<FunctionDecl>>,
}

/// Statement-level control flow.
enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

/// Bundles the two embedder-provided capabilities threaded through execution.
struct Run<'a> {
    host: &'a mut dyn Host,
    hook: &'a mut dyn DebugHook,
}

/// The interpreter. One instance per loaded page; globals persist across
/// event invocations (exactly like a browser tab), and can be snapshot /
/// restored for crawl rollback.
pub struct Interpreter {
    functions: HashMap<String, Rc<FunctionDecl>>,
    globals: HashMap<String, Value>,
    /// Local scopes, one per active call frame.
    locals: Vec<HashMap<String, Value>>,
    /// Introspectable call stack, parallel to `locals`.
    stack: Vec<FrameInfo>,
    steps: u64,
    fuel_limit: u64,
    max_depth: usize,
}

impl Default for Interpreter {
    fn default() -> Self {
        Self::new()
    }
}

impl Interpreter {
    /// Creates an interpreter with default limits.
    pub fn new() -> Self {
        Self::with_fuel(DEFAULT_FUEL)
    }

    /// Creates an interpreter with a custom fuel budget.
    pub fn with_fuel(fuel_limit: u64) -> Self {
        Self {
            functions: HashMap::new(),
            globals: HashMap::new(),
            locals: Vec::new(),
            stack: Vec::new(),
            steps: 0,
            fuel_limit,
            max_depth: DEFAULT_MAX_DEPTH,
        }
    }

    /// Total steps executed so far (the virtual CPU-cost measure).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Resets the step counter (fuel window restarts too).
    pub fn reset_steps(&mut self) {
        self.steps = 0;
    }

    /// True when a user function `name` has been declared.
    pub fn has_function(&self, name: &str) -> bool {
        self.functions.contains_key(name)
    }

    /// Names of all declared user functions (unspecified order).
    pub fn function_names(&self) -> impl Iterator<Item = &str> {
        self.functions.keys().map(String::as_str)
    }

    /// Reads a global variable.
    pub fn global(&self, name: &str) -> Option<&Value> {
        self.globals.get(name)
    }

    /// Sets a global variable.
    pub fn set_global(&mut self, name: &str, value: Value) {
        self.globals.insert(name.to_string(), value);
    }

    /// Snapshots globals + function table (crawler rollback support).
    /// Values are deep-cloned so later array/dict mutation cannot leak into
    /// the snapshot.
    pub fn snapshot_globals(&self) -> GlobalsSnapshot {
        GlobalsSnapshot {
            globals: self
                .globals
                .iter()
                .map(|(k, v)| (k.clone(), v.deep_clone()))
                .collect(),
            functions: self.functions.clone(),
        }
    }

    /// Restores a snapshot taken by [`Self::snapshot_globals`]. The snapshot
    /// itself stays pristine (values are deep-cloned out again).
    pub fn restore_globals(&mut self, snapshot: &GlobalsSnapshot) {
        self.globals = snapshot
            .globals
            .iter()
            .map(|(k, v)| (k.clone(), v.deep_clone()))
            .collect();
        self.functions = snapshot.functions.clone();
    }

    /// Parses `src`, hoists its function declarations and executes its
    /// top-level statements. This is the page-load path (`<script>` bodies).
    pub fn load_program(
        &mut self,
        src: &str,
        host: &mut dyn Host,
        hook: &mut dyn DebugHook,
    ) -> Result<(), JsError> {
        let program = parse_program(src)?;
        let mut run = Run { host, hook };
        // Hoist all function declarations (including nested-in-blocks ones at
        // the top level) before executing statements.
        self.hoist(&program.body);
        for stmt in &program.body {
            match self.exec_stmt(stmt, &mut run)? {
                Flow::Normal => {}
                // `return`/`break` at top level are tolerated no-ops.
                _ => break,
            }
        }
        Ok(())
    }

    /// Evaluates an event-handler snippet (e.g. the value of an `onclick`
    /// attribute) and returns the value of its final expression statement.
    pub fn eval(
        &mut self,
        src: &str,
        host: &mut dyn Host,
        hook: &mut dyn DebugHook,
    ) -> Result<Value, JsError> {
        let program = parse_program(src)?;
        let mut run = Run { host, hook };
        self.hoist(&program.body);
        let mut last = Value::Undefined;
        for stmt in &program.body {
            if let Stmt::Expr(expr) = stmt {
                last = self.eval_expr(expr, &mut run)?;
            } else {
                match self.exec_stmt(stmt, &mut run)? {
                    Flow::Normal => last = Value::Undefined,
                    Flow::Return(v) => return Ok(v),
                    _ => break,
                }
            }
        }
        Ok(last)
    }

    /// Calls a declared user function by name.
    pub fn call(
        &mut self,
        name: &str,
        args: Vec<Value>,
        host: &mut dyn Host,
        hook: &mut dyn DebugHook,
    ) -> Result<Value, JsError> {
        let mut run = Run { host, hook };
        self.call_function(name, args, 0, &mut run)
    }

    fn hoist(&mut self, body: &[Stmt]) {
        for stmt in body {
            if let Stmt::Function(decl) = stmt {
                self.functions.insert(decl.name.clone(), Rc::clone(decl));
            }
        }
    }

    fn burn(&mut self, line: u32) -> Result<(), JsError> {
        self.steps += 1;
        if self.steps > self.fuel_limit {
            Err(JsError::at(
                JsErrorKind::FuelExhausted,
                format!("script exceeded {} steps", self.fuel_limit),
                line,
            ))
        } else {
            Ok(())
        }
    }

    fn current_function_name(&self) -> &str {
        self.stack.last().map(|f| f.function.as_str()).unwrap_or("")
    }

    // ---- statements ------------------------------------------------------

    fn exec_stmt(&mut self, stmt: &Stmt, run: &mut Run<'_>) -> Result<Flow, JsError> {
        self.burn(0)?;
        match stmt {
            Stmt::Empty => Ok(Flow::Normal),
            Stmt::Function(decl) => {
                self.functions.insert(decl.name.clone(), Rc::clone(decl));
                Ok(Flow::Normal)
            }
            Stmt::VarDecl { name, init, line } => {
                run.hook.on_statement(self.current_function_name(), *line);
                let value = match init {
                    Some(expr) => self.eval_expr(expr, run)?,
                    None => Value::Undefined,
                };
                self.declare_var(name, value);
                Ok(Flow::Normal)
            }
            Stmt::Expr(expr) => {
                self.eval_expr(expr, run)?;
                Ok(Flow::Normal)
            }
            Stmt::Block(body) => self.exec_block(body, run),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if self.eval_expr(cond, run)?.truthy() {
                    self.exec_block(then_branch, run)
                } else {
                    self.exec_block(else_branch, run)
                }
            }
            Stmt::While { cond, body } => {
                while self.eval_expr(cond, run)?.truthy() {
                    match self.exec_block(body, run)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
            } => {
                if let Some(init) = init {
                    self.exec_stmt(init, run)?;
                }
                loop {
                    if let Some(cond) = cond {
                        if !self.eval_expr(cond, run)?.truthy() {
                            break;
                        }
                    }
                    match self.exec_block(body, run)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                    if let Some(update) = update {
                        self.eval_expr(update, run)?;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Return(value) => {
                let v = match value {
                    Some(expr) => self.eval_expr(expr, run)?,
                    None => Value::Undefined,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
        }
    }

    fn exec_block(&mut self, body: &[Stmt], run: &mut Run<'_>) -> Result<Flow, JsError> {
        self.hoist(body);
        for stmt in body {
            match self.exec_stmt(stmt, run)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    // ---- variables -------------------------------------------------------

    fn declare_var(&mut self, name: &str, value: Value) {
        if let Some(scope) = self.locals.last_mut() {
            scope.insert(name.to_string(), value);
        } else {
            self.globals.insert(name.to_string(), value);
        }
    }

    fn read_var(&mut self, name: &str, line: u32, run: &mut Run<'_>) -> Result<Value, JsError> {
        if let Some(scope) = self.locals.last() {
            if let Some(v) = scope.get(name) {
                return Ok(v.clone());
            }
        }
        if let Some(v) = self.globals.get(name) {
            return Ok(v.clone());
        }
        if let Some(v) = run.host.get_global(name) {
            return Ok(v);
        }
        Err(JsError::at(
            JsErrorKind::Reference,
            format!("{name} is not defined"),
            line,
        ))
    }

    fn write_var(&mut self, name: &str, value: Value) {
        if let Some(scope) = self.locals.last_mut() {
            if scope.contains_key(name) {
                scope.insert(name.to_string(), value);
                return;
            }
        }
        // Assignment to an undeclared name creates a global (JS semantics).
        self.globals.insert(name.to_string(), value);
    }

    // ---- expressions -----------------------------------------------------

    fn eval_expr(&mut self, expr: &Expr, run: &mut Run<'_>) -> Result<Value, JsError> {
        self.burn(0)?;
        match expr {
            Expr::Num(n) => Ok(Value::Num(*n)),
            Expr::Str(s) => Ok(Value::Str(Rc::clone(s))),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Null => Ok(Value::Null),
            Expr::Undefined => Ok(Value::Undefined),
            Expr::ArrayLit(items) => {
                let values = self.eval_args(items, run)?;
                Ok(Value::array(values))
            }
            Expr::ObjectLit(entries) => {
                let mut evaluated = Vec::with_capacity(entries.len());
                for (key, expr) in entries {
                    evaluated.push((key.clone(), self.eval_expr(expr, run)?));
                }
                Ok(Value::dict(evaluated))
            }
            Expr::Index { object, index } => {
                let obj = self.eval_expr(object, run)?;
                let idx = self.eval_expr(index, run)?;
                self.get_index(&obj, &idx)
            }
            Expr::Ident { name, line } => self.read_var(name, *line, run),
            Expr::Unary { op, expr } => {
                let v = self.eval_expr(expr, run)?;
                Ok(match op {
                    UnOp::Neg => Value::Num(-v.to_number()),
                    UnOp::Not => Value::Bool(!v.truthy()),
                    UnOp::Typeof => Value::str(v.type_of()),
                })
            }
            Expr::And(lhs, rhs) => {
                let l = self.eval_expr(lhs, run)?;
                if l.truthy() {
                    self.eval_expr(rhs, run)
                } else {
                    Ok(l)
                }
            }
            Expr::Or(lhs, rhs) => {
                let l = self.eval_expr(lhs, run)?;
                if l.truthy() {
                    Ok(l)
                } else {
                    self.eval_expr(rhs, run)
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let l = self.eval_expr(lhs, run)?;
                let r = self.eval_expr(rhs, run)?;
                Ok(apply_binop(*op, &l, &r))
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                if self.eval_expr(cond, run)?.truthy() {
                    self.eval_expr(then_expr, run)
                } else {
                    self.eval_expr(else_expr, run)
                }
            }
            Expr::Assign { op, target, value } => {
                let rhs = self.eval_expr(value, run)?;
                let new_value = match op {
                    AssignOp::Assign => rhs,
                    other => {
                        let current = self.read_target(target, run)?;
                        let binop = match other {
                            AssignOp::Add => BinOp::Add,
                            AssignOp::Sub => BinOp::Sub,
                            AssignOp::Mul => BinOp::Mul,
                            AssignOp::Div => BinOp::Div,
                            AssignOp::Assign => unreachable!("handled above"),
                        };
                        apply_binop(binop, &current, &rhs)
                    }
                };
                self.write_target(target, new_value.clone(), run)?;
                Ok(new_value)
            }
            Expr::PostIncDec { target, inc } => {
                let old = self.read_target(target, run)?;
                let old_num = old.to_number();
                let delta = if *inc { 1.0 } else { -1.0 };
                self.write_target(target, Value::Num(old_num + delta), run)?;
                Ok(Value::Num(old_num))
            }
            Expr::Member { object, prop } => {
                let obj = self.eval_expr(object, run)?;
                self.get_member(&obj, prop, run)
            }
            Expr::Call { callee, args, line } => {
                let arg_values = self.eval_args(args, run)?;
                self.dispatch_call(callee, arg_values, *line, run)
            }
            Expr::MethodCall {
                object,
                method,
                args,
                line,
            } => {
                // `Math.floor(...)`-style namespace calls.
                if let Expr::Ident { name, .. } = object.as_ref() {
                    if name == "Math" {
                        let arg_values = self.eval_args(args, run)?;
                        return math_method(method, &arg_values, *line);
                    }
                }
                let obj = self.eval_expr(object, run)?;
                let arg_values = self.eval_args(args, run)?;
                match obj {
                    Value::Str(s) => string_method(&s, method, &arg_values, *line),
                    Value::Array(items) => array_method(&items, method, &arg_values, *line),
                    Value::Dict(entries) => dict_method(&entries, method, &arg_values, *line),
                    Value::Object(id) => {
                        let ctx = HostCtx {
                            stack: &self.stack,
                            steps: self.steps,
                        };
                        run.host.call_method(id, method, &arg_values, &ctx)
                    }
                    other => Err(JsError::at(
                        JsErrorKind::Type,
                        format!("cannot call method {method} on {}", other.type_of()),
                        *line,
                    )),
                }
            }
            Expr::New { class, args, line } => {
                let arg_values = self.eval_args(args, run)?;
                let ctx = HostCtx {
                    stack: &self.stack,
                    steps: self.steps,
                };
                run.host
                    .construct(class, &arg_values, &ctx)
                    .map_err(|e| e_with_line(e, *line))
            }
        }
    }

    fn eval_args(&mut self, args: &[Expr], run: &mut Run<'_>) -> Result<Vec<Value>, JsError> {
        args.iter().map(|a| self.eval_expr(a, run)).collect()
    }

    fn read_target(&mut self, target: &AssignTarget, run: &mut Run<'_>) -> Result<Value, JsError> {
        match target {
            AssignTarget::Ident(name) => self.read_var(name, 0, run),
            AssignTarget::Member { object, prop } => {
                let obj = self.eval_expr(object, run)?;
                self.get_member(&obj, prop, run)
            }
            AssignTarget::Index { object, index } => {
                let obj = self.eval_expr(object, run)?;
                let idx = self.eval_expr(index, run)?;
                self.get_index(&obj, &idx)
            }
        }
    }

    /// `object[index]` read.
    fn get_index(&mut self, obj: &Value, idx: &Value) -> Result<Value, JsError> {
        self.burn(0)?;
        match obj {
            Value::Array(items) => {
                let i = idx.to_number();
                if i.is_nan() || i < 0.0 {
                    return Ok(Value::Undefined);
                }
                Ok(items
                    .borrow()
                    .get(i as usize)
                    .cloned()
                    .unwrap_or(Value::Undefined))
            }
            Value::Dict(entries) => Ok(entries
                .borrow()
                .get(&idx.to_string_value())
                .cloned()
                .unwrap_or(Value::Undefined)),
            Value::Str(s) => {
                let i = idx.to_number();
                if i.is_nan() || i < 0.0 {
                    return Ok(Value::Undefined);
                }
                Ok(s.chars()
                    .nth(i as usize)
                    .map(|c| Value::str(c.to_string()))
                    .unwrap_or(Value::Undefined))
            }
            other => Err(JsError::type_error(format!(
                "cannot index {}",
                other.type_of()
            ))),
        }
    }

    /// `object[index] = value` write.
    fn set_index(&mut self, obj: &Value, idx: &Value, value: Value) -> Result<(), JsError> {
        self.burn(0)?;
        match obj {
            Value::Array(items) => {
                let i = idx.to_number();
                if i.is_nan() || !(0.0..=1e7).contains(&i) {
                    return Err(JsError::type_error("bad array index"));
                }
                let i = i as usize;
                let mut items = items.borrow_mut();
                if i >= items.len() {
                    items.resize(i + 1, Value::Undefined);
                }
                items[i] = value;
                Ok(())
            }
            Value::Dict(entries) => {
                entries.borrow_mut().insert(idx.to_string_value(), value);
                Ok(())
            }
            other => Err(JsError::type_error(format!(
                "cannot index-assign {}",
                other.type_of()
            ))),
        }
    }

    fn write_target(
        &mut self,
        target: &AssignTarget,
        value: Value,
        run: &mut Run<'_>,
    ) -> Result<(), JsError> {
        match target {
            AssignTarget::Ident(name) => {
                self.write_var(name, value);
                Ok(())
            }
            AssignTarget::Member { object, prop } => {
                let obj = self.eval_expr(object, run)?;
                match obj {
                    Value::Object(id) => {
                        let ctx = HostCtx {
                            stack: &self.stack,
                            steps: self.steps,
                        };
                        run.host.set_property(id, prop, value, &ctx)
                    }
                    Value::Dict(entries) => {
                        entries.borrow_mut().insert(prop.clone(), value);
                        Ok(())
                    }
                    other => Err(JsError::type_error(format!(
                        "cannot set {prop} on {}",
                        other.type_of()
                    ))),
                }
            }
            AssignTarget::Index { object, index } => {
                let obj = self.eval_expr(object, run)?;
                let idx = self.eval_expr(index, run)?;
                self.set_index(&obj, &idx, value)
            }
        }
    }

    fn get_member(&mut self, obj: &Value, prop: &str, run: &mut Run<'_>) -> Result<Value, JsError> {
        match obj {
            Value::Str(s) => match prop {
                "length" => Ok(Value::Num(s.chars().count() as f64)),
                _ => Ok(Value::Undefined),
            },
            Value::Array(items) => match prop {
                "length" => Ok(Value::Num(items.borrow().len() as f64)),
                _ => Ok(Value::Undefined),
            },
            Value::Dict(entries) => Ok(entries
                .borrow()
                .get(prop)
                .cloned()
                .unwrap_or(Value::Undefined)),
            Value::Object(id) => run.host.get_property(*id, prop),
            other => Err(JsError::type_error(format!(
                "cannot read {prop} of {}",
                other.type_of()
            ))),
        }
    }

    fn dispatch_call(
        &mut self,
        callee: &str,
        args: Vec<Value>,
        line: u32,
        run: &mut Run<'_>,
    ) -> Result<Value, JsError> {
        // User functions take precedence over natives (they shadow).
        if self.functions.contains_key(callee) {
            return self.call_function(callee, args, line, run);
        }
        if let Some(v) = builtin_global(callee, &args) {
            return Ok(v);
        }
        if run.host.has_native(callee) {
            let ctx = HostCtx {
                stack: &self.stack,
                steps: self.steps,
            };
            return run.host.call_native(callee, &args, &ctx);
        }
        Err(JsError::at(
            JsErrorKind::Reference,
            format!("{callee} is not a function"),
            line,
        ))
    }

    fn call_function(
        &mut self,
        name: &str,
        args: Vec<Value>,
        line: u32,
        run: &mut Run<'_>,
    ) -> Result<Value, JsError> {
        let decl = self.functions.get(name).cloned().ok_or_else(|| {
            JsError::at(
                JsErrorKind::Reference,
                format!("{name} is not a function"),
                line,
            )
        })?;
        if self.stack.len() >= self.max_depth {
            return Err(JsError::at(
                JsErrorKind::StackOverflow,
                format!("call depth exceeded {} in {name}", self.max_depth),
                line,
            ));
        }

        let rendered_args = args
            .iter()
            .map(Value::render_arg)
            .collect::<Vec<_>>()
            .join(", ");
        let frame = FrameInfo {
            function: name.to_string(),
            rendered_args,
            line,
        };

        match run.hook.on_enter(&frame) {
            EnterAction::ShortCircuit(v) => return Ok(v),
            EnterAction::Continue => {}
        }

        let mut scope = HashMap::with_capacity(decl.params.len());
        for (i, param) in decl.params.iter().enumerate() {
            scope.insert(
                param.clone(),
                args.get(i).cloned().unwrap_or(Value::Undefined),
            );
        }
        self.locals.push(scope);
        self.stack.push(frame);

        let mut result = Ok(Value::Undefined);
        for stmt in &decl.body {
            match self.exec_stmt(stmt, run) {
                Ok(Flow::Return(v)) => {
                    result = Ok(v);
                    break;
                }
                Ok(_) => {}
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }

        let frame = self.stack.pop().expect("frame pushed above");
        self.locals.pop();
        match &result {
            Ok(v) => run.hook.on_exit(&frame, Ok(v)),
            Err(e) => run.hook.on_exit(&frame, Err(e)),
        }
        result
    }
}

fn e_with_line(mut e: JsError, line: u32) -> JsError {
    if e.line.is_none() {
        e.line = Some(line);
    }
    e
}

/// Applies a non-short-circuit binary operator with JS coercions.
fn apply_binop(op: BinOp, l: &Value, r: &Value) -> Value {
    match op {
        BinOp::Add => {
            // String concatenation when either side is a string.
            if matches!(l, Value::Str(_)) || matches!(r, Value::Str(_)) {
                Value::str(format!("{}{}", l.to_string_value(), r.to_string_value()))
            } else {
                Value::Num(l.to_number() + r.to_number())
            }
        }
        BinOp::Sub => Value::Num(l.to_number() - r.to_number()),
        BinOp::Mul => Value::Num(l.to_number() * r.to_number()),
        BinOp::Div => Value::Num(l.to_number() / r.to_number()),
        BinOp::Rem => Value::Num(l.to_number() % r.to_number()),
        BinOp::Eq => Value::Bool(l.loose_eq(r)),
        BinOp::NotEq => Value::Bool(!l.loose_eq(r)),
        BinOp::StrictEq => Value::Bool(l.strict_eq(r)),
        BinOp::StrictNotEq => Value::Bool(!l.strict_eq(r)),
        BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge => {
            let result = if let (Value::Str(a), Value::Str(b)) = (l, r) {
                compare_ord(op, a.as_ref().cmp(b.as_ref()))
            } else {
                let (a, b) = (l.to_number(), r.to_number());
                if a.is_nan() || b.is_nan() {
                    false
                } else {
                    match op {
                        BinOp::Lt => a < b,
                        BinOp::Gt => a > b,
                        BinOp::Le => a <= b,
                        BinOp::Ge => a >= b,
                        _ => unreachable!(),
                    }
                }
            };
            Value::Bool(result)
        }
    }
}

fn compare_ord(op: BinOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        BinOp::Lt => ord == Less,
        BinOp::Gt => ord == Greater,
        BinOp::Le => ord != Greater,
        BinOp::Ge => ord != Less,
        _ => unreachable!(),
    }
}

/// Built-in global functions available regardless of the host.
fn builtin_global(name: &str, args: &[Value]) -> Option<Value> {
    let arg = |i: usize| args.get(i).cloned().unwrap_or(Value::Undefined);
    Some(match name {
        "parseInt" => {
            let s = arg(0).to_string_value();
            let t = s.trim();
            let (sign, digits) = match t.strip_prefix('-') {
                Some(rest) => (-1.0, rest),
                None => (1.0, t.strip_prefix('+').unwrap_or(t)),
            };
            let num_part: String = digits.chars().take_while(|c| c.is_ascii_digit()).collect();
            if num_part.is_empty() {
                Value::Num(f64::NAN)
            } else {
                Value::Num(sign * num_part.parse::<f64>().unwrap_or(f64::NAN))
            }
        }
        "parseFloat" => {
            let s = arg(0).to_string_value();
            let t = s.trim();
            // Longest numeric prefix.
            let mut end = 0;
            for i in (1..=t.len()).rev() {
                if t[..i].parse::<f64>().is_ok() {
                    end = i;
                    break;
                }
            }
            if end == 0 {
                Value::Num(f64::NAN)
            } else {
                Value::Num(t[..end].parse().unwrap_or(f64::NAN))
            }
        }
        "String" => Value::str(arg(0).to_string_value()),
        "Number" => Value::Num(arg(0).to_number()),
        "isNaN" => Value::Bool(arg(0).to_number().is_nan()),
        _ => return None,
    })
}

/// `Math.*` namespace methods.
fn math_method(method: &str, args: &[Value], line: u32) -> Result<Value, JsError> {
    let a = args.first().map(Value::to_number).unwrap_or(f64::NAN);
    let b = args.get(1).map(Value::to_number).unwrap_or(f64::NAN);
    Ok(Value::Num(match method {
        "floor" => a.floor(),
        "ceil" => a.ceil(),
        "round" => (a + 0.5).floor(),
        "abs" => a.abs(),
        "sqrt" => a.sqrt(),
        "pow" => a.powf(b),
        "max" => args
            .iter()
            .map(Value::to_number)
            .fold(f64::NEG_INFINITY, f64::max),
        "min" => args
            .iter()
            .map(Value::to_number)
            .fold(f64::INFINITY, f64::min),
        _ => {
            return Err(JsError::at(
                JsErrorKind::Type,
                format!("Math.{method} is not supported"),
                line,
            ))
        }
    }))
}

/// Methods on string primitives.
fn string_method(s: &str, method: &str, args: &[Value], line: u32) -> Result<Value, JsError> {
    let arg_str = |i: usize| -> String {
        args.get(i)
            .map(Value::to_string_value)
            .unwrap_or_else(|| "undefined".into())
    };
    let arg_num = |i: usize| -> f64 { args.get(i).map(Value::to_number).unwrap_or(f64::NAN) };
    Ok(match method {
        "indexOf" => {
            let needle = arg_str(0);
            match s.find(&needle) {
                Some(byte_idx) => Value::Num(s[..byte_idx].chars().count() as f64),
                None => Value::Num(-1.0),
            }
        }
        "charAt" => {
            let idx = arg_num(0);
            if idx.is_nan() || idx < 0.0 {
                Value::str("")
            } else {
                s.chars()
                    .nth(idx as usize)
                    .map(|c| Value::str(c.to_string()))
                    .unwrap_or_else(|| Value::str(""))
            }
        }
        "substring" => {
            let len = s.chars().count() as f64;
            let clamp = |v: f64| -> usize {
                if v.is_nan() {
                    0
                } else {
                    v.clamp(0.0, len) as usize
                }
            };
            let mut start = clamp(arg_num(0));
            let mut end = if args.len() > 1 {
                clamp(arg_num(1))
            } else {
                len as usize
            };
            if start > end {
                std::mem::swap(&mut start, &mut end);
            }
            Value::str(s.chars().skip(start).take(end - start).collect::<String>())
        }
        "toLowerCase" => Value::str(s.to_lowercase()),
        "toUpperCase" => Value::str(s.to_uppercase()),
        "replace" => {
            let from = arg_str(0);
            let to = arg_str(1);
            Value::str(s.replacen(&from, &to, 1))
        }
        "trim" => Value::str(s.trim()),
        "startsWith" => Value::Bool(s.starts_with(&arg_str(0))),
        "endsWith" => Value::Bool(s.ends_with(&arg_str(0))),
        "includes" => Value::Bool(s.contains(&arg_str(0))),
        other => {
            return Err(JsError::at(
                JsErrorKind::Type,
                format!("string method {other} is not supported"),
                line,
            ))
        }
    })
}

/// Methods on script arrays.
fn array_method(
    items: &std::rc::Rc<std::cell::RefCell<Vec<Value>>>,
    method: &str,
    args: &[Value],
    line: u32,
) -> Result<Value, JsError> {
    Ok(match method {
        "push" => {
            let mut items = items.borrow_mut();
            for a in args {
                items.push(a.clone());
            }
            Value::Num(items.len() as f64)
        }
        "pop" => items.borrow_mut().pop().unwrap_or(Value::Undefined),
        "shift" => {
            let mut items = items.borrow_mut();
            if items.is_empty() {
                Value::Undefined
            } else {
                items.remove(0)
            }
        }
        "join" => {
            let sep = args
                .first()
                .map(Value::to_string_value)
                .unwrap_or_else(|| ",".into());
            Value::str(
                items
                    .borrow()
                    .iter()
                    .map(Value::to_string_value)
                    .collect::<Vec<_>>()
                    .join(&sep),
            )
        }
        "indexOf" => {
            let needle = args.first().cloned().unwrap_or(Value::Undefined);
            Value::Num(
                items
                    .borrow()
                    .iter()
                    .position(|v| v.strict_eq(&needle))
                    .map(|i| i as f64)
                    .unwrap_or(-1.0),
            )
        }
        "includes" => {
            let needle = args.first().cloned().unwrap_or(Value::Undefined);
            Value::Bool(items.borrow().iter().any(|v| v.strict_eq(&needle)))
        }
        "slice" => {
            let items = items.borrow();
            let len = items.len() as f64;
            let norm = |v: f64| -> usize {
                let v = if v < 0.0 {
                    (len + v).max(0.0)
                } else {
                    v.min(len)
                };
                v as usize
            };
            let start = norm(args.first().map(Value::to_number).unwrap_or(0.0));
            let end = norm(args.get(1).map(Value::to_number).unwrap_or(len));
            Value::array(items[start.min(items.len())..end.max(start).min(items.len())].to_vec())
        }
        "concat" => {
            let mut out = items.borrow().clone();
            for a in args {
                match a {
                    Value::Array(more) => out.extend(more.borrow().iter().cloned()),
                    other => out.push(other.clone()),
                }
            }
            Value::array(out)
        }
        "reverse" => {
            items.borrow_mut().reverse();
            Value::Array(std::rc::Rc::clone(items))
        }
        other => {
            return Err(JsError::at(
                JsErrorKind::Type,
                format!("array method {other} is not supported"),
                line,
            ))
        }
    })
}

/// Methods on script objects.
fn dict_method(
    entries: &std::rc::Rc<std::cell::RefCell<std::collections::BTreeMap<String, Value>>>,
    method: &str,
    args: &[Value],
    line: u32,
) -> Result<Value, JsError> {
    Ok(match method {
        "hasOwnProperty" => {
            let key = args.first().map(Value::to_string_value).unwrap_or_default();
            Value::Bool(entries.borrow().contains_key(&key))
        }
        other => {
            return Err(JsError::at(
                JsErrorKind::Type,
                format!("object method {other} is not supported"),
                line,
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::debug::{NoopHook, TraceHook};
    use crate::host::NullHost;
    use crate::value::format_number;

    fn eval(src: &str) -> Value {
        let mut interp = Interpreter::new();
        interp.eval(src, &mut NullHost, &mut NoopHook).unwrap()
    }

    fn eval_err(src: &str) -> JsError {
        let mut interp = Interpreter::new();
        interp.eval(src, &mut NullHost, &mut NoopHook).unwrap_err()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval("1 + 2 * 3"), Value::Num(7.0));
        assert_eq!(eval("(1 + 2) * 3"), Value::Num(9.0));
        assert_eq!(eval("10 % 3"), Value::Num(1.0));
        assert_eq!(eval("-4 + 1"), Value::Num(-3.0));
        assert_eq!(eval("7 / 2"), Value::Num(3.5));
    }

    #[test]
    fn string_concat_coercion() {
        assert_eq!(eval("'p=' + 2"), Value::str("p=2"));
        assert_eq!(eval("1 + '2'"), Value::str("12"));
        assert_eq!(eval("'a' + true"), Value::str("atrue"));
        assert_eq!(eval("'a' + null"), Value::str("anull"));
    }

    #[test]
    fn variables_and_scope() {
        assert_eq!(
            eval("var x = 1; function f() { var x = 2; return x; } f() + x"),
            Value::Num(3.0)
        );
    }

    #[test]
    fn globals_visible_in_functions() {
        assert_eq!(
            eval("var page = 5; function get() { return page; } get()"),
            Value::Num(5.0)
        );
    }

    #[test]
    fn assignment_in_function_writes_global_when_undeclared_locally() {
        assert_eq!(
            eval("var p = 1; function bump() { p = p + 1; } bump(); bump(); p"),
            Value::Num(3.0)
        );
    }

    #[test]
    fn control_flow() {
        assert_eq!(
            eval("var s = 0; for (var i = 1; i <= 4; i++) { s += i; } s"),
            Value::Num(10.0)
        );
        assert_eq!(
            eval("var n = 0; while (n < 10) { n++; if (n == 5) break; } n"),
            Value::Num(5.0)
        );
        assert_eq!(
            eval("var s = 0; for (var i = 0; i < 5; i++) { if (i % 2 == 0) continue; s += i; } s"),
            Value::Num(4.0)
        );
    }

    #[test]
    fn functions_and_recursion() {
        assert_eq!(
            eval("function fact(n) { if (n <= 1) return 1; return n * fact(n - 1); } fact(6)"),
            Value::Num(720.0)
        );
    }

    #[test]
    fn ternary_and_logical() {
        assert_eq!(eval("true ? 'a' : 'b'"), Value::str("a"));
        assert_eq!(eval("0 || 'fallback'"), Value::str("fallback"));
        assert_eq!(eval("'x' && 'y'"), Value::str("y"));
        assert_eq!(eval("!0"), Value::Bool(true));
    }

    #[test]
    fn short_circuit_skips_rhs() {
        // The rhs references an undefined name; && must not evaluate it.
        assert_eq!(eval("false && bogus"), Value::Bool(false));
        assert_eq!(eval("true || bogus"), Value::Bool(true));
    }

    #[test]
    fn equality_semantics() {
        assert_eq!(eval("1 == '1'"), Value::Bool(true));
        assert_eq!(eval("1 === '1'"), Value::Bool(false));
        assert_eq!(eval("null == undefined"), Value::Bool(true));
        assert_eq!(eval("null === undefined"), Value::Bool(false));
        assert_eq!(eval("'a' < 'b'"), Value::Bool(true));
    }

    #[test]
    fn undefined_reference_is_error() {
        assert_eq!(eval_err("nope").kind, JsErrorKind::Reference);
        assert_eq!(eval_err("nope()").kind, JsErrorKind::Reference);
    }

    #[test]
    fn infinite_loop_burns_fuel() {
        let mut interp = Interpreter::with_fuel(10_000);
        let err = interp
            .eval("while (true) { var x = 1; }", &mut NullHost, &mut NoopHook)
            .unwrap_err();
        assert_eq!(err.kind, JsErrorKind::FuelExhausted);
    }

    #[test]
    fn deep_recursion_overflows() {
        assert_eq!(
            eval_err("function f(n) { return f(n + 1); } f(0)").kind,
            JsErrorKind::StackOverflow
        );
    }

    #[test]
    fn globals_snapshot_restore() {
        let mut interp = Interpreter::new();
        interp
            .eval("var page = 1;", &mut NullHost, &mut NoopHook)
            .unwrap();
        let snap = interp.snapshot_globals();
        interp
            .eval("page = 99;", &mut NullHost, &mut NoopHook)
            .unwrap();
        assert_eq!(interp.global("page"), Some(&Value::Num(99.0)));
        interp.restore_globals(&snap);
        assert_eq!(interp.global("page"), Some(&Value::Num(1.0)));
    }

    #[test]
    fn builtins() {
        assert_eq!(eval("parseInt('42abc')"), Value::Num(42.0));
        assert_eq!(eval("parseInt('-7')"), Value::Num(-7.0));
        assert!(matches!(eval("parseInt('x')"), Value::Num(n) if n.is_nan()));
        assert_eq!(eval("parseFloat('3.5x')"), Value::Num(3.5));
        assert_eq!(eval("String(42)"), Value::str("42"));
        assert_eq!(eval("Number('8')"), Value::Num(8.0));
        assert_eq!(eval("isNaN('x')"), Value::Bool(true));
    }

    #[test]
    fn math_namespace() {
        assert_eq!(eval("Math.floor(2.7)"), Value::Num(2.0));
        assert_eq!(eval("Math.max(1, 5, 3)"), Value::Num(5.0));
        assert_eq!(eval("Math.abs(0 - 4)"), Value::Num(4.0));
    }

    #[test]
    fn string_methods() {
        assert_eq!(eval("'hello'.length"), Value::Num(5.0));
        assert_eq!(eval("'hello'.indexOf('ll')"), Value::Num(2.0));
        assert_eq!(eval("'hello'.substring(1, 3)"), Value::str("el"));
        assert_eq!(eval("'AbC'.toLowerCase()"), Value::str("abc"));
        assert_eq!(eval("'a-b-c'.replace('-', '+')"), Value::str("a+b-c"));
        assert_eq!(eval("'  x '.trim()"), Value::str("x"));
        assert_eq!(eval("'abc'.charAt(1)"), Value::str("b"));
    }

    #[test]
    fn user_functions_shadow_builtins() {
        assert_eq!(
            eval("function parseInt(x) { return 'shadowed'; } parseInt('42')"),
            Value::str("shadowed")
        );
    }

    #[test]
    fn hook_sees_frames_with_rendered_args() {
        let mut interp = Interpreter::new();
        let mut hook = TraceHook::default();
        interp
            .eval(
                "function g(u, f) { return u; } function h(p) { return g('/c?p=' + p, true); } h(2)",
                &mut NullHost,
                &mut hook,
            )
            .unwrap();
        assert_eq!(hook.entered[0], ("h".into(), "2".into()));
        assert_eq!(hook.entered[1], ("g".into(), "\"/c?p=2\", true".into()));
    }

    #[test]
    fn hook_short_circuit() {
        struct SkipG;
        impl DebugHook for SkipG {
            fn on_enter(&mut self, frame: &FrameInfo) -> EnterAction {
                if frame.function == "g" {
                    EnterAction::ShortCircuit(Value::str("cached"))
                } else {
                    EnterAction::Continue
                }
            }
        }
        let mut interp = Interpreter::new();
        let result = interp
            .eval(
                "function g() { return 'live'; } g()",
                &mut NullHost,
                &mut SkipG,
            )
            .unwrap();
        assert_eq!(result, Value::str("cached"));
    }

    #[test]
    fn postfix_increment_returns_old_value() {
        assert_eq!(eval("var i = 5; var j = i++; j * 10 + i"), Value::Num(56.0));
        assert_eq!(eval("var i = 5; i--; i"), Value::Num(4.0));
    }

    #[test]
    fn call_declared_function_directly() {
        let mut interp = Interpreter::new();
        interp
            .load_program(
                "function add(a, b) { return a + b; }",
                &mut NullHost,
                &mut NoopHook,
            )
            .unwrap();
        let v = interp
            .call(
                "add",
                vec![Value::Num(2.0), Value::Num(3.0)],
                &mut NullHost,
                &mut NoopHook,
            )
            .unwrap();
        assert_eq!(v, Value::Num(5.0));
    }

    #[test]
    fn missing_args_are_undefined() {
        assert_eq!(
            eval("function f(a, b) { return typeof b; } f(1)"),
            Value::str("undefined")
        );
    }

    #[test]
    fn steps_counted() {
        let mut interp = Interpreter::new();
        interp
            .eval(
                "var s = 0; for (var i = 0; i < 100; i++) s += i;",
                &mut NullHost,
                &mut NoopHook,
            )
            .unwrap();
        assert!(
            interp.steps() > 300,
            "loop must burn steps, got {}",
            interp.steps()
        );
    }

    #[test]
    fn number_display_in_concat() {
        assert_eq!(eval("'' + 3"), Value::str("3"));
        assert_eq!(eval("'' + 3.25"), Value::str("3.25"));
        assert_eq!(format_number(2.0), "2");
    }

    #[test]
    fn typeof_operator() {
        assert_eq!(eval("typeof 'a'"), Value::str("string"));
        assert_eq!(eval("typeof 1"), Value::str("number"));
        assert_eq!(eval("typeof undefined"), Value::str("undefined"));
    }
}

#[cfg(test)]
mod collection_tests {
    use super::*;
    use crate::debug::NoopHook;
    use crate::host::NullHost;

    fn eval(src: &str) -> Value {
        let mut interp = Interpreter::new();
        interp.eval(src, &mut NullHost, &mut NoopHook).unwrap()
    }

    fn eval_err(src: &str) -> JsError {
        let mut interp = Interpreter::new();
        interp.eval(src, &mut NullHost, &mut NoopHook).unwrap_err()
    }

    #[test]
    fn array_literal_and_index() {
        assert_eq!(eval("var a = [10, 20, 30]; a[1]"), Value::Num(20.0));
        assert_eq!(eval("[1,2,3].length"), Value::Num(3.0));
        assert_eq!(eval("var a = []; a.length"), Value::Num(0.0));
        assert_eq!(eval("[5][9]"), Value::Undefined);
    }

    #[test]
    fn array_mutation() {
        assert_eq!(
            eval("var a = [1]; a.push(2, 3); a.join('-')"),
            Value::str("1-2-3")
        );
        assert_eq!(eval("var a = [1,2]; a.pop(); a.length"), Value::Num(1.0));
        assert_eq!(eval("var a = [7,8]; a.shift()"), Value::Num(7.0));
        assert_eq!(eval("var a = [0]; a[3] = 9; a.length"), Value::Num(4.0));
        assert_eq!(eval("var a = [1,2]; a[0] = 5; a[0]"), Value::Num(5.0));
    }

    #[test]
    fn array_search_and_slice() {
        assert_eq!(eval("[4,5,6].indexOf(5)"), Value::Num(1.0));
        assert_eq!(eval("[4,5].indexOf(9)"), Value::Num(-1.0));
        assert_eq!(eval("[1,2,3].includes(3)"), Value::Bool(true));
        assert_eq!(eval("[1,2,3,4].slice(1,3).join(',')"), Value::str("2,3"));
        assert_eq!(eval("[1,2].concat([3],4).length"), Value::Num(4.0));
        assert_eq!(eval("[1,2,3].reverse()[0]"), Value::Num(3.0));
    }

    #[test]
    fn arrays_have_reference_semantics() {
        assert_eq!(
            eval("var a = [1]; var b = a; b.push(2); a.length"),
            Value::Num(2.0)
        );
        assert_eq!(eval("var a = [1]; var b = a; a == b"), Value::Bool(true));
        assert_eq!(
            eval("[1] == [1]"),
            Value::Bool(false),
            "distinct identities"
        );
    }

    #[test]
    fn object_literal_member_and_index() {
        assert_eq!(eval("var o = {a: 1, b: 'x'}; o.a"), Value::Num(1.0));
        assert_eq!(eval("var o = {a: 1}; o['a']"), Value::Num(1.0));
        assert_eq!(eval("var o = {}; o.k = 7; o.k"), Value::Num(7.0));
        assert_eq!(eval("var o = {}; o['k'] = 7; o.k"), Value::Num(7.0));
        assert_eq!(eval("var o = {a: 1}; o.missing"), Value::Undefined);
        assert_eq!(eval("({'quoted key': 2})['quoted key']"), Value::Num(2.0));
    }

    #[test]
    fn object_has_own_property() {
        assert_eq!(eval("({a: 1}).hasOwnProperty('a')"), Value::Bool(true));
        assert_eq!(eval("({a: 1}).hasOwnProperty('b')"), Value::Bool(false));
    }

    #[test]
    fn nested_structures() {
        assert_eq!(
            eval("var o = {pages: [1,2,3]}; o.pages[2]"),
            Value::Num(3.0)
        );
        assert_eq!(
            eval("var m = {a: {b: [0, {c: 42}]}}; m.a.b[1].c"),
            Value::Num(42.0)
        );
    }

    #[test]
    fn string_indexing() {
        assert_eq!(eval("'abc'[1]"), Value::str("b"));
        assert_eq!(eval("'abc'[5]"), Value::Undefined);
    }

    #[test]
    fn snapshot_isolates_collections() {
        let mut interp = Interpreter::new();
        interp
            .eval("var log = [1];", &mut NullHost, &mut NoopHook)
            .unwrap();
        let snap = interp.snapshot_globals();
        interp
            .eval("log.push(2); log.push(3);", &mut NullHost, &mut NoopHook)
            .unwrap();
        assert_eq!(
            interp
                .eval("log.length", &mut NullHost, &mut NoopHook)
                .unwrap(),
            Value::Num(3.0)
        );
        interp.restore_globals(&snap);
        assert_eq!(
            interp
                .eval("log.length", &mut NullHost, &mut NoopHook)
                .unwrap(),
            Value::Num(1.0),
            "rollback must undo array mutation (crawler correctness)"
        );
        // And restoring twice still works (the snapshot wasn't consumed).
        interp
            .eval("log.push(9);", &mut NullHost, &mut NoopHook)
            .unwrap();
        interp.restore_globals(&snap);
        assert_eq!(
            interp
                .eval("log.length", &mut NullHost, &mut NoopHook)
                .unwrap(),
            Value::Num(1.0)
        );
    }

    #[test]
    fn array_in_loops() {
        assert_eq!(
            eval("var a = []; for (var i = 0; i < 5; i++) a.push(i * i); a.join(' ')"),
            Value::str("0 1 4 9 16")
        );
        assert_eq!(
            eval("var a = [3,1,2]; var s = 0; for (var i = 0; i < a.length; i++) s += a[i]; s"),
            Value::Num(6.0)
        );
    }

    #[test]
    fn index_errors() {
        assert_eq!(eval_err("null[0]").kind, JsErrorKind::Type);
        assert_eq!(eval_err("(5)[0]").kind, JsErrorKind::Type);
        assert_eq!(eval_err("var a=[1]; a.bogus()").kind, JsErrorKind::Type);
    }

    #[test]
    fn typeof_and_truthiness() {
        assert_eq!(eval("typeof []"), Value::str("object"));
        assert_eq!(eval("typeof {}"), Value::str("object"));
        assert_eq!(eval("[] ? 1 : 0"), Value::Num(1.0), "empty array is truthy");
    }

    #[test]
    fn array_string_coercion() {
        assert_eq!(eval("'' + [1,2]"), Value::str("1,2"));
        assert_eq!(eval("[] + ''"), Value::str(""));
    }

    #[test]
    fn postfix_increment_on_element() {
        assert_eq!(eval("var a = [5]; a[0]++; a[0]"), Value::Num(6.0));
        assert_eq!(eval("var o = {n: 1}; o.n++; o.n"), Value::Num(2.0));
    }
}
