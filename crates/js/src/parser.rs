//! Recursive-descent parser for the JavaScript subset.

use crate::ast::*;
use crate::error::{JsError, JsErrorKind};
use crate::lexer::{lex, Keyword, Punct, Token, TokenKind};
use std::rc::Rc;

/// Parses a full program (script body or event-handler snippet).
pub fn parse_program(src: &str) -> Result<Program, JsError> {
    let tokens = lex(src)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut body = Vec::new();
    while !parser.at_eof() {
        body.push(parser.statement()?);
    }
    Ok(Program { body })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn advance(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek() == &TokenKind::Punct(p) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<(), JsError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(JsError::at(
                JsErrorKind::Parse,
                format!("expected {p:?}, found {:?}", self.peek()),
                self.line(),
            ))
        }
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.peek() == &TokenKind::Keyword(k) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, JsError> {
        match self.advance() {
            TokenKind::Ident(name) => Ok(name),
            other => Err(JsError::at(
                JsErrorKind::Parse,
                format!("expected identifier, found {other:?}"),
                self.line(),
            )),
        }
    }

    // ---- statements ------------------------------------------------------

    fn statement(&mut self) -> Result<Stmt, JsError> {
        let line = self.line();
        match self.peek().clone() {
            TokenKind::Punct(Punct::Semi) => {
                self.advance();
                Ok(Stmt::Empty)
            }
            TokenKind::Punct(Punct::LBrace) => {
                self.advance();
                let body = self.block_body()?;
                Ok(Stmt::Block(body))
            }
            TokenKind::Keyword(Keyword::Var) => {
                self.advance();
                let mut decls = Vec::new();
                loop {
                    let name = self.expect_ident()?;
                    let init = if self.eat_punct(Punct::Assign) {
                        Some(self.expression()?)
                    } else {
                        None
                    };
                    decls.push(Stmt::VarDecl { name, init, line });
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
                self.eat_punct(Punct::Semi);
                if decls.len() == 1 {
                    Ok(decls.pop().expect("one decl"))
                } else {
                    Ok(Stmt::Block(decls))
                }
            }
            TokenKind::Keyword(Keyword::Function) => {
                self.advance();
                let name = self.expect_ident()?;
                self.expect_punct(Punct::LParen)?;
                let mut params = Vec::new();
                if !self.eat_punct(Punct::RParen) {
                    loop {
                        params.push(self.expect_ident()?);
                        if !self.eat_punct(Punct::Comma) {
                            break;
                        }
                    }
                    self.expect_punct(Punct::RParen)?;
                }
                self.expect_punct(Punct::LBrace)?;
                let body = self.block_body()?;
                Ok(Stmt::Function(Rc::new(FunctionDecl {
                    name,
                    params,
                    body,
                    line,
                })))
            }
            TokenKind::Keyword(Keyword::If) => {
                self.advance();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expression()?;
                self.expect_punct(Punct::RParen)?;
                let then_branch = self.branch_body()?;
                let else_branch = if self.eat_keyword(Keyword::Else) {
                    self.branch_body()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                })
            }
            TokenKind::Keyword(Keyword::While) => {
                self.advance();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expression()?;
                self.expect_punct(Punct::RParen)?;
                let body = self.branch_body()?;
                Ok(Stmt::While { cond, body })
            }
            TokenKind::Keyword(Keyword::For) => {
                self.advance();
                self.expect_punct(Punct::LParen)?;
                let init = if self.peek() == &TokenKind::Punct(Punct::Semi) {
                    self.advance();
                    None
                } else {
                    let stmt = self.statement()?;
                    // `statement` consumed the `;` for var/expr statements.
                    Some(Box::new(stmt))
                };
                let cond = if self.peek() == &TokenKind::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect_punct(Punct::Semi)?;
                let update = if self.peek() == &TokenKind::Punct(Punct::RParen) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect_punct(Punct::RParen)?;
                let body = self.branch_body()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    update,
                    body,
                })
            }
            TokenKind::Keyword(Keyword::Return) => {
                self.advance();
                let value = if matches!(
                    self.peek(),
                    TokenKind::Punct(Punct::Semi)
                        | TokenKind::Punct(Punct::RBrace)
                        | TokenKind::Eof
                ) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.eat_punct(Punct::Semi);
                Ok(Stmt::Return(value))
            }
            TokenKind::Keyword(Keyword::Break) => {
                self.advance();
                self.eat_punct(Punct::Semi);
                Ok(Stmt::Break)
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.advance();
                self.eat_punct(Punct::Semi);
                Ok(Stmt::Continue)
            }
            _ => {
                let expr = self.expression()?;
                self.eat_punct(Punct::Semi);
                Ok(Stmt::Expr(expr))
            }
        }
    }

    /// Body of `{ ... }` whose opening brace is already consumed.
    fn block_body(&mut self) -> Result<Vec<Stmt>, JsError> {
        let mut body = Vec::new();
        loop {
            if self.eat_punct(Punct::RBrace) {
                return Ok(body);
            }
            if self.at_eof() {
                return Err(JsError::at(
                    JsErrorKind::Parse,
                    "unclosed block",
                    self.line(),
                ));
            }
            body.push(self.statement()?);
        }
    }

    /// Either a braced block or a single statement (if/while/for bodies).
    fn branch_body(&mut self) -> Result<Vec<Stmt>, JsError> {
        if self.eat_punct(Punct::LBrace) {
            self.block_body()
        } else {
            Ok(vec![self.statement()?])
        }
    }

    // ---- expressions -----------------------------------------------------

    fn expression(&mut self) -> Result<Expr, JsError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, JsError> {
        let lhs = self.ternary()?;
        let op = match self.peek() {
            TokenKind::Punct(Punct::Assign) => Some(AssignOp::Assign),
            TokenKind::Punct(Punct::PlusAssign) => Some(AssignOp::Add),
            TokenKind::Punct(Punct::MinusAssign) => Some(AssignOp::Sub),
            TokenKind::Punct(Punct::StarAssign) => Some(AssignOp::Mul),
            TokenKind::Punct(Punct::SlashAssign) => Some(AssignOp::Div),
            _ => None,
        };
        if let Some(op) = op {
            let line = self.line();
            self.advance();
            let value = self.assignment()?;
            let target = match lhs {
                Expr::Ident { name, .. } => AssignTarget::Ident(name),
                Expr::Member { object, prop } => AssignTarget::Member { object, prop },
                Expr::Index { object, index } => AssignTarget::Index { object, index },
                _ => {
                    return Err(JsError::at(
                        JsErrorKind::Parse,
                        "invalid assignment target",
                        line,
                    ))
                }
            };
            return Ok(Expr::Assign {
                op,
                target,
                value: Box::new(value),
            });
        }
        Ok(lhs)
    }

    fn ternary(&mut self) -> Result<Expr, JsError> {
        let cond = self.logical_or()?;
        if self.eat_punct(Punct::Question) {
            let then_expr = self.assignment()?;
            self.expect_punct(Punct::Colon)?;
            let else_expr = self.assignment()?;
            return Ok(Expr::Ternary {
                cond: Box::new(cond),
                then_expr: Box::new(then_expr),
                else_expr: Box::new(else_expr),
            });
        }
        Ok(cond)
    }

    fn logical_or(&mut self) -> Result<Expr, JsError> {
        let mut lhs = self.logical_and()?;
        while self.eat_punct(Punct::OrOr) {
            let rhs = self.logical_and()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn logical_and(&mut self) -> Result<Expr, JsError> {
        let mut lhs = self.equality()?;
        while self.eat_punct(Punct::AndAnd) {
            let rhs = self.equality()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, JsError> {
        let mut lhs = self.comparison()?;
        loop {
            let op = match self.peek() {
                TokenKind::Punct(Punct::EqEq) => BinOp::Eq,
                TokenKind::Punct(Punct::NotEq) => BinOp::NotEq,
                TokenKind::Punct(Punct::EqEqEq) => BinOp::StrictEq,
                TokenKind::Punct(Punct::NotEqEq) => BinOp::StrictNotEq,
                _ => break,
            };
            self.advance();
            let rhs = self.comparison()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn comparison(&mut self) -> Result<Expr, JsError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                TokenKind::Punct(Punct::Lt) => BinOp::Lt,
                TokenKind::Punct(Punct::Gt) => BinOp::Gt,
                TokenKind::Punct(Punct::Le) => BinOp::Le,
                TokenKind::Punct(Punct::Ge) => BinOp::Ge,
                _ => break,
            };
            self.advance();
            let rhs = self.additive()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, JsError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Punct(Punct::Plus) => BinOp::Add,
                TokenKind::Punct(Punct::Minus) => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, JsError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Punct(Punct::Star) => BinOp::Mul,
                TokenKind::Punct(Punct::Slash) => BinOp::Div,
                TokenKind::Punct(Punct::Percent) => BinOp::Rem,
                _ => break,
            };
            self.advance();
            let rhs = self.unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, JsError> {
        if self.eat_punct(Punct::Minus) {
            let expr = self.unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(expr),
            });
        }
        if self.eat_punct(Punct::Not) {
            let expr = self.unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(expr),
            });
        }
        if self.eat_punct(Punct::Plus) {
            // Unary plus: numeric coercion; parse as 0 + expr is wrong for
            // strings, so keep a dedicated Neg(Neg(x))-free representation:
            let expr = self.unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(expr),
                }),
            });
        }
        if self.eat_keyword(Keyword::Typeof) {
            let expr = self.unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Typeof,
                expr: Box::new(expr),
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, JsError> {
        let mut expr = self.primary()?;
        loop {
            if self.eat_punct(Punct::LBracket) {
                let index = self.expression()?;
                self.expect_punct(Punct::RBracket)?;
                expr = Expr::Index {
                    object: Box::new(expr),
                    index: Box::new(index),
                };
                continue;
            }
            if self.eat_punct(Punct::Dot) {
                let prop = self.expect_ident()?;
                if self.peek() == &TokenKind::Punct(Punct::LParen) {
                    let line = self.line();
                    self.advance();
                    let args = self.call_args()?;
                    expr = Expr::MethodCall {
                        object: Box::new(expr),
                        method: prop,
                        args,
                        line,
                    };
                } else {
                    expr = Expr::Member {
                        object: Box::new(expr),
                        prop,
                    };
                }
                continue;
            }
            // Postfix ++/--
            let inc = match self.peek() {
                TokenKind::Punct(Punct::PlusPlus) => Some(true),
                TokenKind::Punct(Punct::MinusMinus) => Some(false),
                _ => None,
            };
            if let Some(inc) = inc {
                let line = self.line();
                self.advance();
                let target = match expr {
                    Expr::Ident { name, .. } => AssignTarget::Ident(name),
                    Expr::Member { object, prop } => AssignTarget::Member { object, prop },
                    Expr::Index { object, index } => AssignTarget::Index { object, index },
                    _ => {
                        return Err(JsError::at(
                            JsErrorKind::Parse,
                            "invalid increment target",
                            line,
                        ))
                    }
                };
                expr = Expr::PostIncDec { target, inc };
                continue;
            }
            break;
        }
        Ok(expr)
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, JsError> {
        let mut args = Vec::new();
        if self.eat_punct(Punct::RParen) {
            return Ok(args);
        }
        loop {
            args.push(self.expression()?);
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::RParen)?;
        Ok(args)
    }

    fn primary(&mut self) -> Result<Expr, JsError> {
        let line = self.line();
        match self.advance() {
            TokenKind::Num(n) => Ok(Expr::Num(n)),
            TokenKind::Str(s) => Ok(Expr::Str(s.into())),
            TokenKind::Keyword(Keyword::True) => Ok(Expr::Bool(true)),
            TokenKind::Keyword(Keyword::False) => Ok(Expr::Bool(false)),
            TokenKind::Keyword(Keyword::Null) => Ok(Expr::Null),
            TokenKind::Keyword(Keyword::Undefined) => Ok(Expr::Undefined),
            TokenKind::Keyword(Keyword::New) => {
                let class = self.expect_ident()?;
                let args = if self.eat_punct(Punct::LParen) {
                    self.call_args()?
                } else {
                    Vec::new()
                };
                Ok(Expr::New { class, args, line })
            }
            TokenKind::Punct(Punct::LParen) => {
                let expr = self.expression()?;
                self.expect_punct(Punct::RParen)?;
                Ok(expr)
            }
            TokenKind::Punct(Punct::LBracket) => {
                let mut items = Vec::new();
                if !self.eat_punct(Punct::RBracket) {
                    loop {
                        items.push(self.expression()?);
                        if !self.eat_punct(Punct::Comma) {
                            break;
                        }
                    }
                    self.expect_punct(Punct::RBracket)?;
                }
                Ok(Expr::ArrayLit(items))
            }
            TokenKind::Punct(Punct::LBrace) => {
                let mut entries = Vec::new();
                if !self.eat_punct(Punct::RBrace) {
                    loop {
                        let key = match self.advance() {
                            TokenKind::Ident(name) => name,
                            TokenKind::Str(s) => s,
                            TokenKind::Num(n) => crate::value::format_number(n),
                            other => {
                                return Err(JsError::at(
                                    JsErrorKind::Parse,
                                    format!("bad object key {other:?}"),
                                    line,
                                ))
                            }
                        };
                        self.expect_punct(Punct::Colon)?;
                        let value = self.expression()?;
                        entries.push((key, value));
                        if !self.eat_punct(Punct::Comma) {
                            break;
                        }
                    }
                    self.expect_punct(Punct::RBrace)?;
                }
                Ok(Expr::ObjectLit(entries))
            }
            TokenKind::Ident(name) => {
                if self.peek() == &TokenKind::Punct(Punct::LParen) {
                    self.advance();
                    let args = self.call_args()?;
                    Ok(Expr::Call {
                        callee: name,
                        args,
                        line,
                    })
                } else {
                    Ok(Expr::Ident { name, line })
                }
            }
            other => Err(JsError::at(
                JsErrorKind::Parse,
                format!("unexpected token {other:?}"),
                line,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_function_decl() {
        let p = parse_program("function f(a, b) { return a + b; }").unwrap();
        match &p.body[0] {
            Stmt::Function(f) => {
                assert_eq!(f.name, "f");
                assert_eq!(f.params, vec!["a", "b"]);
                assert_eq!(f.body.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence() {
        let p = parse_program("1 + 2 * 3").unwrap();
        match &p.body[0] {
            Stmt::Expr(Expr::Binary {
                op: BinOp::Add,
                rhs,
                ..
            }) => {
                assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn member_chain_and_method_call() {
        let p = parse_program("xhr.open('GET', url, false)").unwrap();
        match &p.body[0] {
            Stmt::Expr(Expr::MethodCall { method, args, .. }) => {
                assert_eq!(method, "open");
                assert_eq!(args.len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn member_assignment() {
        let p = parse_program("el.innerHTML = '<p>x</p>'").unwrap();
        match &p.body[0] {
            Stmt::Expr(Expr::Assign {
                target: AssignTarget::Member { prop, .. },
                ..
            }) => assert_eq!(prop, "innerHTML"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn new_expression() {
        let p = parse_program("var x = new XMLHttpRequest();").unwrap();
        match &p.body[0] {
            Stmt::VarDecl {
                init: Some(Expr::New { class, .. }),
                ..
            } => {
                assert_eq!(class, "XMLHttpRequest");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn for_loop_parses() {
        let p = parse_program("for (var i = 0; i < 10; i++) { f(i); }").unwrap();
        assert!(matches!(&p.body[0], Stmt::For { .. }));
    }

    #[test]
    fn if_else_chains() {
        let p = parse_program("if (a) b(); else if (c) d(); else e();").unwrap();
        match &p.body[0] {
            Stmt::If { else_branch, .. } => {
                assert!(matches!(&else_branch[0], Stmt::If { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multi_var_declaration() {
        let p = parse_program("var a = 1, b = 2;").unwrap();
        match &p.body[0] {
            Stmt::Block(decls) => assert_eq!(decls.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ternary() {
        let p = parse_program("a ? b : c").unwrap();
        assert!(matches!(&p.body[0], Stmt::Expr(Expr::Ternary { .. })));
    }

    #[test]
    fn missing_paren_is_parse_error() {
        let err = parse_program("if (a { b(); }").unwrap_err();
        assert_eq!(err.kind, JsErrorKind::Parse);
    }

    #[test]
    fn postfix_on_member() {
        let p = parse_program("obj.count++").unwrap();
        assert!(matches!(
            &p.body[0],
            Stmt::Expr(Expr::PostIncDec {
                target: AssignTarget::Member { .. },
                inc: true
            })
        ));
    }

    #[test]
    fn string_plus_parses_left_assoc() {
        let p = parse_program("'a' + b + 'c'").unwrap();
        match &p.body[0] {
            Stmt::Expr(Expr::Binary { lhs, .. }) => {
                assert!(matches!(**lhs, Expr::Binary { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
