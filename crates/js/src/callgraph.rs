//! The JavaScript invocation graph (thesis §4.1).
//!
//! "This structure contains a node for each Javascript function in the
//! program and its dependencies (i.e., invoked functions)." Functions that
//! fetch content from the server are **hot nodes**. The thesis builds this
//! understanding at runtime (stack inspection); this module derives the same
//! structure *statically* from the AST, which lets a crawler (or a human)
//! inspect a page's network behaviour before firing a single event — and
//! lets tests cross-check the runtime detector.

use crate::ast::{Expr, FunctionDecl, Program, Stmt};
use crate::effects::{local_effects_of_function, LocalEffects};
use crate::parser::parse_program;
use crate::JsError;
use std::collections::{BTreeMap, BTreeSet};

/// Static information about one declared function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionNode {
    pub name: String,
    pub params: Vec<String>,
    pub line: u32,
    /// Names of functions this one invokes directly (user or native).
    pub calls: BTreeSet<String>,
    /// True when the body itself constructs an `XMLHttpRequest` or invokes
    /// `open`/`send` on an object — a *direct* AJAX call site.
    pub direct_ajax: bool,
    /// Syntactic effects of the body (input to `effects::EffectAnalysis`).
    pub effects: LocalEffects,
}

/// A duplicate function definition: JS last-wins semantics are kept, but
/// the shadowing is recorded so the diagnostics pass can surface it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Redefinition {
    pub name: String,
    /// Line of the definition that was replaced.
    pub first_line: u32,
    /// Line of the definition that now wins.
    pub line: u32,
}

/// The invocation graph of a program (Fig 4.1).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InvocationGraph {
    functions: BTreeMap<String, FunctionNode>,
    /// Functions invoked from top-level code (event invocations enter here
    /// too, since handler snippets run at top level).
    pub top_level_calls: BTreeSet<String>,
    /// Duplicate definitions observed within a script or across merged
    /// `<script>` blocks (the later definition wins, as at runtime).
    pub redefinitions: Vec<Redefinition>,
}

impl InvocationGraph {
    /// Builds the graph from source text.
    pub fn from_source(src: &str) -> Result<Self, JsError> {
        Ok(Self::from_program(&parse_program(src)?))
    }

    /// Builds the graph from a parsed program.
    pub fn from_program(program: &Program) -> Self {
        let mut graph = InvocationGraph::default();
        let mut top_level = CallCollector::default();
        for stmt in &program.body {
            match stmt {
                Stmt::Function(decl) => graph.add_function(decl),
                other => top_level.visit_stmt(other),
            }
        }
        graph.top_level_calls = top_level.calls;
        graph
    }

    fn add_function(&mut self, decl: &FunctionDecl) {
        let mut collector = CallCollector::default();
        for stmt in &decl.body {
            collector.visit_stmt(stmt);
        }
        if let Some(prev) = self.functions.get(&decl.name) {
            self.redefinitions.push(Redefinition {
                name: decl.name.clone(),
                first_line: prev.line,
                line: decl.line,
            });
        }
        self.functions.insert(
            decl.name.clone(),
            FunctionNode {
                name: decl.name.clone(),
                params: decl.params.clone(),
                line: decl.line,
                calls: collector.calls,
                direct_ajax: collector.direct_ajax,
                effects: local_effects_of_function(decl),
            },
        );
    }

    /// Merges another script's graph into this one (pages often have several
    /// `<script>` blocks). JS semantics are kept — a later definition of the
    /// same name wins — but each shadowing is recorded in `redefinitions`.
    pub fn merge(&mut self, other: InvocationGraph) {
        self.redefinitions.extend(other.redefinitions);
        for (name, node) in other.functions {
            if let Some(prev) = self.functions.get(&name) {
                self.redefinitions.push(Redefinition {
                    name: name.clone(),
                    first_line: prev.line,
                    line: node.line,
                });
            }
            self.functions.insert(name, node);
        }
        self.top_level_calls.extend(other.top_level_calls);
    }

    /// All function nodes, ordered by name.
    pub fn functions(&self) -> impl Iterator<Item = &FunctionNode> {
        self.functions.values()
    }

    /// Looks a function up.
    pub fn function(&self, name: &str) -> Option<&FunctionNode> {
        self.functions.get(name)
    }

    /// The **hot nodes**: functions whose body directly contains an AJAX
    /// call (the `getURLXMLResponseAndFillDiv` of the YouTube example).
    pub fn hot_nodes(&self) -> Vec<&str> {
        self.functions
            .values()
            .filter(|f| f.direct_ajax)
            .map(|f| f.name.as_str())
            .collect()
    }

    /// Functions that reach a hot node transitively — every event bound to
    /// one of these will cause server traffic (directly or indirectly).
    pub fn reaches_network(&self) -> BTreeSet<&str> {
        // Fixpoint over the call graph.
        let mut reaching: BTreeSet<&str> = self
            .functions
            .values()
            .filter(|f| f.direct_ajax)
            .map(|f| f.name.as_str())
            .collect();
        loop {
            let mut changed = false;
            for f in self.functions.values() {
                if reaching.contains(f.name.as_str()) {
                    continue;
                }
                if f.calls.iter().any(|c| reaching.contains(c.as_str())) {
                    reaching.insert(f.name.as_str());
                    changed = true;
                }
            }
            if !changed {
                return reaching;
            }
        }
    }

    /// Renders the graph in Graphviz dot format; hot nodes are doubled-boxed
    /// (handy to eyeball the Fig 4.1 structure of a real page).
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph invocation {\n  rankdir=LR;\n");
        for f in self.functions.values() {
            let shape = if f.direct_ajax {
                "doubleoctagon"
            } else {
                "box"
            };
            out.push_str(&format!("  \"{}\" [shape={shape}];\n", f.name));
        }
        for f in self.functions.values() {
            for callee in &f.calls {
                if self.functions.contains_key(callee) {
                    out.push_str(&format!("  \"{}\" -> \"{callee}\";\n", f.name));
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

/// AST walker collecting call names and direct AJAX use.
#[derive(Debug, Default)]
struct CallCollector {
    calls: BTreeSet<String>,
    direct_ajax: bool,
}

impl CallCollector {
    fn visit_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::VarDecl { init, .. } => {
                if let Some(e) = init {
                    self.visit_expr(e);
                }
            }
            Stmt::Expr(e) => self.visit_expr(e),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.visit_expr(cond);
                then_branch.iter().for_each(|s| self.visit_stmt(s));
                else_branch.iter().for_each(|s| self.visit_stmt(s));
            }
            Stmt::While { cond, body } => {
                self.visit_expr(cond);
                body.iter().for_each(|s| self.visit_stmt(s));
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
            } => {
                if let Some(s) = init {
                    self.visit_stmt(s);
                }
                if let Some(e) = cond {
                    self.visit_expr(e);
                }
                if let Some(e) = update {
                    self.visit_expr(e);
                }
                body.iter().for_each(|s| self.visit_stmt(s));
            }
            Stmt::Return(Some(e)) => self.visit_expr(e),
            Stmt::Block(body) => body.iter().for_each(|s| self.visit_stmt(s)),
            // Nested function declarations are hoisted by the interpreter;
            // their bodies are analyzed when encountered at the top level.
            Stmt::Function(_) | Stmt::Return(None) | Stmt::Break | Stmt::Continue | Stmt::Empty => {
            }
        }
    }

    fn visit_expr(&mut self, expr: &Expr) {
        match expr {
            Expr::Call { callee, args, .. } => {
                self.calls.insert(callee.clone());
                args.iter().for_each(|a| self.visit_expr(a));
            }
            Expr::MethodCall {
                object,
                method,
                args,
                ..
            } => {
                if method == "send" || method == "open" {
                    self.direct_ajax = true;
                }
                self.visit_expr(object);
                args.iter().for_each(|a| self.visit_expr(a));
            }
            Expr::New { class, args, .. } => {
                if class == "XMLHttpRequest" {
                    self.direct_ajax = true;
                }
                args.iter().for_each(|a| self.visit_expr(a));
            }
            Expr::Binary { lhs, rhs, .. } => {
                self.visit_expr(lhs);
                self.visit_expr(rhs);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                self.visit_expr(a);
                self.visit_expr(b);
            }
            Expr::Unary { expr, .. } => self.visit_expr(expr),
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                self.visit_expr(cond);
                self.visit_expr(then_expr);
                self.visit_expr(else_expr);
            }
            Expr::Assign { target, value, .. } => {
                self.visit_target(target);
                self.visit_expr(value);
            }
            Expr::PostIncDec { target, .. } => self.visit_target(target),
            Expr::Member { object, .. } => self.visit_expr(object),
            Expr::Index { object, index } => {
                self.visit_expr(object);
                self.visit_expr(index);
            }
            Expr::ArrayLit(items) => items.iter().for_each(|i| self.visit_expr(i)),
            Expr::ObjectLit(entries) => entries.iter().for_each(|(_, e)| self.visit_expr(e)),
            Expr::Num(_)
            | Expr::Str(_)
            | Expr::Bool(_)
            | Expr::Null
            | Expr::Undefined
            | Expr::Ident { .. } => {}
        }
    }

    fn visit_target(&mut self, target: &crate::ast::AssignTarget) {
        use crate::ast::AssignTarget;
        match target {
            AssignTarget::Ident(_) => {}
            AssignTarget::Member { object, .. } => self.visit_expr(object),
            AssignTarget::Index { object, index } => {
                self.visit_expr(object);
                self.visit_expr(index);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The thesis' YouTube excerpt (§4.4.1), verbatim in structure.
    const YOUTUBE_SCRIPT: &str = r#"
        function showLoading(div_id) { var x = div_id; }
        function getUrlXMLResponseAndFillDiv(url, div_id) {
            getUrl(url, true);
        }
        function getUrl(url, async) {
            var xmlHttpReq = new XMLHttpRequest();
            xmlHttpReq.open("GET", url, async);
            xmlHttpReq.send(null);
        }
        function urchinTracker(a) { var t = a; }
        function nextPage() {
            showLoading('recent_comments');
            getUrlXMLResponseAndFillDiv('/c?p=2', 'recent_comments');
            urchinTracker('next');
        }
    "#;

    #[test]
    fn youtube_structure() {
        let g = InvocationGraph::from_source(YOUTUBE_SCRIPT).unwrap();
        assert_eq!(g.hot_nodes(), vec!["getUrl"], "getUrl performs the XHR");
        let reach = g.reaches_network();
        assert!(reach.contains("getUrl"));
        assert!(reach.contains("getUrlXMLResponseAndFillDiv"), "indirect");
        assert!(reach.contains("nextPage"), "two hops");
        assert!(!reach.contains("showLoading"));
        assert!(!reach.contains("urchinTracker"));
    }

    #[test]
    fn call_edges_recorded() {
        let g = InvocationGraph::from_source(YOUTUBE_SCRIPT).unwrap();
        let next = g.function("nextPage").unwrap();
        assert!(next.calls.contains("showLoading"));
        assert!(next.calls.contains("getUrlXMLResponseAndFillDiv"));
        assert!(next.calls.contains("urchinTracker"));
        assert!(!next.direct_ajax);
    }

    #[test]
    fn top_level_calls_collected() {
        let g = InvocationGraph::from_source("function f() {} f(); g(1 + h());").unwrap();
        assert!(g.top_level_calls.contains("f"));
        assert!(g.top_level_calls.contains("g"));
        assert!(g.top_level_calls.contains("h"));
    }

    #[test]
    fn calls_inside_control_flow_found() {
        let g = InvocationGraph::from_source(
            "function f(n) { if (n) { g(); } else { while (n) { h(); n--; } } \
             for (var i = x(); i < y(); i++) z(i ? a() : b()); return c(); }",
        )
        .unwrap();
        let f = g.function("f").unwrap();
        for callee in ["g", "h", "x", "y", "z", "a", "b", "c"] {
            assert!(f.calls.contains(callee), "missing {callee}");
        }
    }

    #[test]
    fn ajax_detection_variants() {
        let direct =
            InvocationGraph::from_source("function f() { var x = new XMLHttpRequest(); }").unwrap();
        assert_eq!(direct.hot_nodes(), vec!["f"]);

        let send_only =
            InvocationGraph::from_source("function g(req) { req.send(null); }").unwrap();
        assert_eq!(send_only.hot_nodes(), vec!["g"]);

        let none = InvocationGraph::from_source("function h() { look(); }").unwrap();
        assert!(none.hot_nodes().is_empty());
    }

    #[test]
    fn merge_combines_scripts() {
        let mut a = InvocationGraph::from_source("function one() { net.send(0); }").unwrap();
        let b = InvocationGraph::from_source("function two() { one(); }").unwrap();
        a.merge(b);
        assert_eq!(a.hot_nodes(), vec!["one"]);
        assert!(a.reaches_network().contains("two"));
    }

    #[test]
    fn dot_output_shape() {
        let g = InvocationGraph::from_source(YOUTUBE_SCRIPT).unwrap();
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph invocation {"));
        assert!(dot.contains("\"getUrl\" [shape=doubleoctagon]"));
        assert!(dot.contains("\"nextPage\" -> \"getUrlXMLResponseAndFillDiv\""));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn cycles_terminate() {
        let g = InvocationGraph::from_source(
            "function a() { b(); } function b() { a(); net.send(1); }",
        )
        .unwrap();
        let reach = g.reaches_network();
        assert!(reach.contains("a") && reach.contains("b"));
    }
}
