//! Runtime values and JavaScript-style coercions.

use crate::host::ObjId;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// A runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    Undefined,
    Null,
    Bool(bool),
    Num(f64),
    Str(Rc<str>),
    /// A handle to a host-managed object (XHR, DOM element, …).
    Object(ObjId),
    /// A script-side array (reference semantics, like JS).
    Array(Rc<RefCell<Vec<Value>>>),
    /// A script-side object literal (reference semantics, like JS).
    Dict(Rc<RefCell<BTreeMap<String, Value>>>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Rc::from(s.as_ref()))
    }

    /// Builds an array value.
    pub fn array(items: Vec<Value>) -> Self {
        Value::Array(Rc::new(RefCell::new(items)))
    }

    /// Builds an object value.
    pub fn dict(entries: Vec<(String, Value)>) -> Self {
        Value::Dict(Rc::new(RefCell::new(entries.into_iter().collect())))
    }

    /// Deep-copies the value, so that snapshots are isolated from later
    /// mutation (required by the crawler's rollback: arrays and dicts have
    /// reference semantics during execution, but a snapshot must freeze
    /// them).
    pub fn deep_clone(&self) -> Value {
        match self {
            Value::Array(items) => {
                Value::array(items.borrow().iter().map(Value::deep_clone).collect())
            }
            Value::Dict(entries) => Value::Dict(Rc::new(RefCell::new(
                entries
                    .borrow()
                    .iter()
                    .map(|(k, v)| (k.clone(), v.deep_clone()))
                    .collect(),
            ))),
            other => other.clone(),
        }
    }

    /// JavaScript truthiness.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Undefined | Value::Null => false,
            Value::Bool(b) => *b,
            Value::Num(n) => *n != 0.0 && !n.is_nan(),
            Value::Str(s) => !s.is_empty(),
            Value::Object(_) | Value::Array(_) | Value::Dict(_) => true,
        }
    }

    /// `ToNumber` coercion.
    pub fn to_number(&self) -> f64 {
        match self {
            Value::Undefined => f64::NAN,
            Value::Null => 0.0,
            Value::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            Value::Num(n) => *n,
            Value::Str(s) => {
                let trimmed = s.trim();
                if trimmed.is_empty() {
                    0.0
                } else {
                    trimmed.parse().unwrap_or(f64::NAN)
                }
            }
            // JS: [] -> 0, [x] -> Number(x); we keep the common cases.
            Value::Array(items) => {
                let items = items.borrow();
                match items.len() {
                    0 => 0.0,
                    1 => items[0].to_number(),
                    _ => f64::NAN,
                }
            }
            Value::Object(_) | Value::Dict(_) => f64::NAN,
        }
    }

    /// `ToString` coercion (JS-style number formatting: integral values print
    /// without a decimal point).
    pub fn to_string_value(&self) -> String {
        match self {
            Value::Undefined => "undefined".into(),
            Value::Null => "null".into(),
            Value::Bool(b) => b.to_string(),
            Value::Num(n) => format_number(*n),
            Value::Str(s) => s.to_string(),
            Value::Object(id) => format!("[object #{}]", id.0),
            // JS Array.prototype.toString == join(",").
            Value::Array(items) => items
                .borrow()
                .iter()
                .map(Value::to_string_value)
                .collect::<Vec<_>>()
                .join(","),
            Value::Dict(_) => "[object Object]".to_string(),
        }
    }

    /// Renders the value as it would appear as a source-level argument:
    /// strings quoted, everything else as `to_string_value`. Used to build the
    /// thesis' `StackInfo` hot-node keys, where `f("a", 2)` and `f("a2")` must
    /// be distinguishable.
    pub fn render_arg(&self) -> String {
        match self {
            Value::Str(s) => format!("{s:?}"),
            other => other.to_string_value(),
        }
    }

    /// The `typeof` operator.
    pub fn type_of(&self) -> &'static str {
        match self {
            Value::Undefined => "undefined",
            Value::Null => "object", // Faithful JS quirk.
            Value::Bool(_) => "boolean",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Object(_) | Value::Array(_) | Value::Dict(_) => "object",
        }
    }

    /// Loose equality (`==`) for the subset: numeric comparison when either
    /// side is a number, string comparison for strings, identity for objects.
    pub fn loose_eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Undefined | Null, Undefined | Null) => true,
            (Num(a), Num(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Bool(_), _) | (_, Bool(_)) | (Num(_), Str(_)) | (Str(_), Num(_)) => {
                let (a, b) = (self.to_number(), other.to_number());
                a == b
            }
            (Object(a), Object(b)) => a == b,
            (Array(a), Array(b)) => Rc::ptr_eq(a, b),
            (Dict(a), Dict(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Strict equality (`===`).
    pub fn strict_eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Undefined, Undefined) | (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Num(a), Num(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Object(a), Object(b)) => a == b,
            (Array(a), Array(b)) => Rc::ptr_eq(a, b),
            (Dict(a), Dict(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// JS-style number formatting: `3` not `3.0`, `0.5` stays `0.5`, NaN and
/// infinities spelled like JS.
pub fn format_number(n: f64) -> String {
    if n.is_nan() {
        return "NaN".into();
    }
    if n.is_infinite() {
        return if n > 0.0 {
            "Infinity".into()
        } else {
            "-Infinity".into()
        };
    }
    if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_value())
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.strict_eq(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Undefined.truthy());
        assert!(!Value::Null.truthy());
        assert!(!Value::Num(0.0).truthy());
        assert!(!Value::Num(f64::NAN).truthy());
        assert!(!Value::str("").truthy());
        assert!(Value::str("x").truthy());
        assert!(Value::Num(-1.0).truthy());
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_number(3.0), "3");
        assert_eq!(format_number(3.5), "3.5");
        assert_eq!(format_number(-0.25), "-0.25");
        assert_eq!(format_number(f64::NAN), "NaN");
        assert_eq!(format_number(f64::INFINITY), "Infinity");
    }

    #[test]
    fn coercions() {
        assert_eq!(Value::str("42").to_number(), 42.0);
        assert!(Value::str("x").to_number().is_nan());
        assert_eq!(Value::Bool(true).to_number(), 1.0);
        assert_eq!(Value::Null.to_number(), 0.0);
        assert!(Value::Undefined.to_number().is_nan());
    }

    #[test]
    fn loose_vs_strict_eq() {
        assert!(Value::Num(1.0).loose_eq(&Value::str("1")));
        assert!(!Value::Num(1.0).strict_eq(&Value::str("1")));
        assert!(Value::Null.loose_eq(&Value::Undefined));
        assert!(!Value::Null.strict_eq(&Value::Undefined));
        assert!(Value::Bool(true).loose_eq(&Value::Num(1.0)));
    }

    #[test]
    fn render_arg_quotes_strings() {
        assert_eq!(Value::str("a b").render_arg(), "\"a b\"");
        assert_eq!(Value::Num(2.0).render_arg(), "2");
        assert_eq!(Value::Bool(false).render_arg(), "false");
    }

    #[test]
    fn typeof_values() {
        assert_eq!(Value::Null.type_of(), "object");
        assert_eq!(Value::str("s").type_of(), "string");
        assert_eq!(Value::Num(1.0).type_of(), "number");
    }
}
