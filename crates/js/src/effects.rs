//! Interprocedural effect analysis over the invocation graph.
//!
//! The invocation graph (`callgraph.rs`) answers *who calls whom*; this
//! module answers *what actually happens* when a function runs. Each
//! function gets a [`LocalEffects`] record collected syntactically from its
//! body, and [`EffectAnalysis`] folds those records bottom-up over the SCC
//! condensation of the call graph into per-function [`EffectSummary`]s:
//! which DOM ids are written (constant-propagated through parameters),
//! whether an XHR is reachable and how its URL is formed (predicting
//! hot-node cache hitability), which globals are read or written, which
//! called functions do not exist, and whether the function may fail to
//! terminate.
//!
//! The analysis is deliberately *conservative in one direction*: a handler
//! is reported pure only when every effect channel the interpreter exposes
//! (element `innerHTML` writes, `XMLHttpRequest` traffic, global bindings,
//! shared-array mutation, host dispatch) is provably absent. Anything the
//! collector cannot classify marks the function opaque and therefore
//! impure. That one-sidedness is what lets the crawler skip firing events
//! bound to pure handlers without changing the discovered state machine —
//! and the `--verify-prune` mode in `ajax-crawl` cross-checks the claim at
//! runtime.

use crate::ast::{AssignOp, AssignTarget, BinOp, Expr, FunctionDecl, Program, Stmt, UnOp};
use crate::callgraph::InvocationGraph;
use crate::parser::parse_program;
use crate::value::format_number;
use crate::JsError;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Where a value handed to an effectful operation comes from.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum ValueSource {
    /// A compile-time constant (literals and foldable concatenations),
    /// rendered as the string the interpreter would produce.
    Const(String),
    /// A string known to *start* with this constant prefix, with a
    /// parameter-shaped tail (`'row_' + i` id construction, `'/c?p=' + p`
    /// URL templates). Concatenations whose tail is computed from mutable
    /// state stay [`ValueSource::Dynamic`].
    ConstPrefix(String),
    /// The caller's n-th argument, verbatim.
    Param(usize),
    /// Anything else: globals, computed values, branch-dependent state.
    Dynamic,
}

/// One syntactic call site inside a function body, with its arguments
/// classified so the interprocedural pass can substitute them into the
/// callee's parameter-relative effects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    pub callee: String,
    pub args: Vec<ValueSource>,
    pub line: u32,
}

/// Syntactic (intraprocedural) effects of one function body. Stored on
/// [`crate::callgraph::FunctionNode`] so a graph carries everything the
/// fixpoint needs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LocalEffects {
    /// Element ids written via `innerHTML` where the id is a constant.
    pub dom_write_ids: BTreeSet<String>,
    /// `innerHTML` writes whose target id starts with a constant prefix
    /// (`'row_' + i` construction with a parameter-shaped tail).
    pub dom_write_prefixes: BTreeSet<String>,
    /// `innerHTML` writes whose target id is the n-th parameter.
    pub dom_write_params: BTreeSet<usize>,
    /// `innerHTML` write to a target the analysis cannot name.
    pub dom_write_dynamic: bool,
    /// Element ids looked up via `getElementById` with a constant id —
    /// the read half of the read/write-set abstraction. A write target is
    /// also a read (the element is located before it is mutated).
    pub dom_read_ids: BTreeSet<String>,
    /// Constant-prefix `getElementById` lookups.
    pub dom_read_prefixes: BTreeSet<String>,
    /// `getElementById` lookups whose id is the n-th parameter.
    pub dom_read_params: BTreeSet<usize>,
    /// A `getElementById` the analysis cannot name.
    pub dom_read_dynamic: bool,
    /// XHR URLs sent that are compile-time constants.
    pub xhr_const_urls: BTreeSet<String>,
    /// XHR URL templates: a constant prefix with a parameter-shaped tail.
    pub xhr_url_prefixes: BTreeSet<String>,
    /// XHRs whose URL is the n-th parameter, verbatim.
    pub xhr_url_params: BTreeSet<usize>,
    /// An XHR whose URL is computed (or an `open`/`send` on an object the
    /// analysis cannot prove is not an XHR).
    pub xhr_dynamic: bool,
    /// Global variables read.
    pub reads_globals: BTreeSet<String>,
    /// Global variables written (including shared arrays/objects mutated
    /// through method calls, and nested function declarations, which the
    /// interpreter hoists into the global function table).
    pub writes_globals: BTreeSet<String>,
    /// Contains a `while`/`for` loop.
    pub has_loop: bool,
    /// The body does something outside the modeled effect space.
    pub opaque: bool,
    /// Constant ids written twice in straight-line code with no
    /// intervening read or call — the earlier write is dead (SA010).
    pub overwritten_ids: BTreeSet<String>,
    /// Outgoing calls with classified arguments.
    pub call_sites: Vec<CallSite>,
}

/// How a function's outgoing XHR URLs are formed — a static prediction of
/// hot-node cache hitability. Constant URLs re-hit the crawler's hot-node
/// cache on every invocation; parameter-derived URLs re-hit whenever the
/// handler fires with the same rendered arguments; dynamic URLs (derived
/// from mutable globals or computed state) may never re-hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XhrClass {
    /// No XHR reachable.
    None,
    /// All reachable XHR URLs are compile-time constants.
    Constant,
    /// URLs flow in through parameters (cacheable per argument tuple).
    ParamDerived,
    /// At least one URL is computed from non-constant state.
    Dynamic,
}

/// Transitive effects of calling a function, the fixpoint of
/// [`LocalEffects`] over the call graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EffectSummary {
    pub dom_write_ids: BTreeSet<String>,
    pub dom_write_prefixes: BTreeSet<String>,
    pub dom_write_params: BTreeSet<usize>,
    pub dom_write_dynamic: bool,
    pub dom_read_ids: BTreeSet<String>,
    pub dom_read_prefixes: BTreeSet<String>,
    pub dom_read_params: BTreeSet<usize>,
    pub dom_read_dynamic: bool,
    pub xhr_const_urls: BTreeSet<String>,
    pub xhr_url_prefixes: BTreeSet<String>,
    pub xhr_url_params: BTreeSet<usize>,
    pub xhr_dynamic: bool,
    pub reads_globals: BTreeSet<String>,
    pub writes_globals: BTreeSet<String>,
    /// Called names that are neither user functions nor known builtins —
    /// guaranteed `ReferenceError`s if the call site executes.
    pub calls_undefined: BTreeSet<String>,
    /// Loops or call-graph cycles reachable: termination not provable.
    pub may_not_terminate: bool,
    /// Something un-modeled is reachable; all purity bets are off.
    pub opaque: bool,
}

/// Widening cap for the per-channel location sets: a set that outgrows
/// this many members collapses to the dynamic/`Any` flag. The program's
/// constant pool is finite, so this is a backstop, not the usual exit.
pub const WIDEN_CAP: usize = 32;

impl EffectSummary {
    /// True when running this code can mutate the DOM.
    pub fn writes_dom(&self) -> bool {
        !self.dom_write_ids.is_empty()
            || !self.dom_write_prefixes.is_empty()
            || !self.dom_write_params.is_empty()
            || self.dom_write_dynamic
    }

    /// True when running this code can cause server traffic.
    pub fn reaches_network(&self) -> bool {
        !self.xhr_const_urls.is_empty()
            || !self.xhr_url_prefixes.is_empty()
            || !self.xhr_url_params.is_empty()
            || self.xhr_dynamic
    }

    /// The DOM locations this code may write, as an abstract-location set.
    /// Parameter-indexed writes that survived into the summary (a snippet
    /// has no parameters to substitute) degrade to `Any`.
    pub fn write_locs(&self) -> crate::absdom::LocSet {
        locs_of(
            &self.dom_write_ids,
            &self.dom_write_prefixes,
            self.dom_write_dynamic || !self.dom_write_params.is_empty(),
        )
    }

    /// The DOM locations this code may read. Write targets are included —
    /// the element is located before it is mutated.
    pub fn read_locs(&self) -> crate::absdom::LocSet {
        let mut locs = locs_of(
            &self.dom_read_ids,
            &self.dom_read_prefixes,
            self.dom_read_dynamic || !self.dom_read_params.is_empty(),
        );
        locs.union(&self.write_locs());
        locs
    }

    /// Widens every location set past [`WIDEN_CAP`] into its dynamic
    /// flag, bounding the lattice height of the interprocedural fixpoint.
    fn widen(&mut self) {
        widen_channel(
            &mut self.dom_write_ids,
            &mut self.dom_write_prefixes,
            &mut self.dom_write_dynamic,
        );
        widen_channel(
            &mut self.dom_read_ids,
            &mut self.dom_read_prefixes,
            &mut self.dom_read_dynamic,
        );
        widen_channel(
            &mut self.xhr_const_urls,
            &mut self.xhr_url_prefixes,
            &mut self.xhr_dynamic,
        );
    }

    /// True when the code provably cannot change application state: no DOM
    /// writes, no network, no global writes, no calls to undefined
    /// functions (which the interpreter would still tolerate, but which
    /// mean the analysis mis-modeled the page), and nothing opaque.
    /// Global *reads* and possible non-termination are allowed — a looping
    /// handler burns fuel and errors out without mutating anything.
    pub fn is_pure(&self) -> bool {
        !self.writes_dom()
            && !self.reaches_network()
            && self.writes_globals.is_empty()
            && self.calls_undefined.is_empty()
            && !self.opaque
    }

    /// Classifies the reachable XHR traffic for cache-hitability. URL
    /// templates (constant prefix + parameter tail) re-hit per rendered
    /// argument tuple, exactly like verbatim parameter URLs.
    pub fn xhr_class(&self) -> XhrClass {
        if self.xhr_dynamic {
            XhrClass::Dynamic
        } else if !self.xhr_url_params.is_empty() || !self.xhr_url_prefixes.is_empty() {
            XhrClass::ParamDerived
        } else if !self.xhr_const_urls.is_empty() {
            XhrClass::Constant
        } else {
            XhrClass::None
        }
    }
}

/// Builds a [`crate::absdom::LocSet`] from one effect channel.
fn locs_of(
    ids: &BTreeSet<String>,
    prefixes: &BTreeSet<String>,
    dynamic: bool,
) -> crate::absdom::LocSet {
    use crate::absdom::{AbsLoc, LocSet};
    if dynamic {
        return LocSet::any();
    }
    let mut locs = LocSet::new();
    for id in ids {
        locs.insert(AbsLoc::Id(id.clone()));
    }
    for p in prefixes {
        locs.insert(AbsLoc::Prefix(p.clone()));
    }
    locs
}

/// Widens one channel's `(ids, prefixes)` pair into its dynamic flag
/// once the combined set outgrows [`WIDEN_CAP`].
fn widen_channel(ids: &mut BTreeSet<String>, prefixes: &mut BTreeSet<String>, dynamic: &mut bool) {
    if ids.len() + prefixes.len() > WIDEN_CAP {
        ids.clear();
        prefixes.clear();
        *dynamic = true;
    }
}

/// Diagnostic severity, ordered so `Error` compares greatest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Info,
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The lint catalogue. Codes are stable; `docs/static-analysis.md` is the
/// reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// SA001: a `<script>` block failed to parse (analysis is best-effort).
    ScriptParseError,
    /// SA002: a reachable call names a function that does not exist.
    CallsUndefined,
    /// SA003: a function was redefined (later `<script>` block wins).
    HandlerRedefinition,
    /// SA004: a declared function is unreachable from any handler, onload,
    /// or top-level call.
    DeadFunction,
    /// SA005: a constant DOM-write target id does not exist in the document.
    DomWriteUnknownId,
    /// SA006: a hot node sends XHRs with computed URLs — the hot-node cache
    /// may never re-hit for it.
    DynamicHotCall,
    /// SA007: an event handler is provably stateless (the crawler can skip
    /// firing it).
    StatelessHandler,
    /// SA008: a handler reaches a loop or call-graph cycle; termination is
    /// not provable (the interpreter's fuel limit still bounds it).
    NonTerminating,
    /// SA009: two handlers bound on the same element have overlapping DOM
    /// write sets — their firing order is observable.
    WriteSetConflict,
    /// SA010: a constant id is written twice in straight-line code with no
    /// intervening read or call; the first write is dead.
    AlwaysOverwritten,
    /// SA011: a function both reads and writes the same global — firing it
    /// twice is not idempotent (a self-race under re-entry).
    SelfRace,
    /// SA012: a handler's DOM write set is unbounded (`*`), defeating
    /// equivalence and commutativity pruning.
    UnboundedWriteSet,
}

impl Lint {
    pub fn code(self) -> &'static str {
        match self {
            Lint::ScriptParseError => "SA001",
            Lint::CallsUndefined => "SA002",
            Lint::HandlerRedefinition => "SA003",
            Lint::DeadFunction => "SA004",
            Lint::DomWriteUnknownId => "SA005",
            Lint::DynamicHotCall => "SA006",
            Lint::StatelessHandler => "SA007",
            Lint::NonTerminating => "SA008",
            Lint::WriteSetConflict => "SA009",
            Lint::AlwaysOverwritten => "SA010",
            Lint::SelfRace => "SA011",
            Lint::UnboundedWriteSet => "SA012",
        }
    }

    pub fn severity(self) -> Severity {
        match self {
            Lint::ScriptParseError | Lint::CallsUndefined => Severity::Error,
            Lint::HandlerRedefinition
            | Lint::DeadFunction
            | Lint::DomWriteUnknownId
            | Lint::WriteSetConflict
            | Lint::AlwaysOverwritten => Severity::Warning,
            Lint::DynamicHotCall
            | Lint::StatelessHandler
            | Lint::NonTerminating
            | Lint::SelfRace
            | Lint::UnboundedWriteSet => Severity::Info,
        }
    }
}

/// One finding from the diagnostics pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub lint: Lint,
    /// What the finding is about (function name, binding description, …).
    pub subject: String,
    pub message: String,
}

impl Diagnostic {
    pub fn new(lint: Lint, subject: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            lint,
            subject: subject.into(),
            message: message.into(),
        }
    }

    pub fn severity(&self) -> Severity {
        self.lint.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity(),
            self.lint.code(),
            self.subject,
            self.message
        )
    }
}

/// Global function names the interpreter resolves natively; calling these
/// is effect-free and never a `ReferenceError`.
fn is_builtin(name: &str) -> bool {
    matches!(
        name,
        "parseInt" | "parseFloat" | "String" | "Number" | "isNaN"
    )
}

/// Methods that never mutate their receiver regardless of its type
/// (string/array/dict read accessors in the interpreter).
fn is_pure_method(name: &str) -> bool {
    matches!(
        name,
        "charAt"
            | "indexOf"
            | "lastIndexOf"
            | "substring"
            | "substr"
            | "slice"
            | "toLowerCase"
            | "toUpperCase"
            | "split"
            | "join"
            | "concat"
            | "replace"
            | "trim"
            | "toString"
            | "getAttribute"
    )
}

/// Host-provided globals; referencing them is not a user-global read.
fn is_host_global(name: &str) -> bool {
    matches!(name, "document" | "window" | "Math")
}

// ---------------------------------------------------------------------------
// Intraprocedural collection
// ---------------------------------------------------------------------------

/// Abstract value a local binding can hold during the linear walk.
#[derive(Debug, Clone)]
enum AbstractVal {
    NumConst(f64),
    StrConst(String),
    /// A string known to start with this constant prefix, followed by a
    /// parameter-shaped tail (`'row_' + i`). Tails computed from mutable
    /// state degrade to [`AbstractVal::Other`] instead.
    StrPrefix(String),
    Param(usize),
    /// `document.getElementById(src)` result.
    Element(ValueSource),
    /// An `XMLHttpRequest`, with the URL recorded at `open()` time.
    Xhr(Option<ValueSource>),
    Other,
}

fn classify(v: &AbstractVal) -> ValueSource {
    match v {
        AbstractVal::NumConst(n) => ValueSource::Const(format_number(*n)),
        AbstractVal::StrConst(s) => ValueSource::Const(s.clone()),
        AbstractVal::StrPrefix(s) => ValueSource::ConstPrefix(s.clone()),
        AbstractVal::Param(i) => ValueSource::Param(*i),
        _ => ValueSource::Dynamic,
    }
}

struct EffectCollector<'a> {
    params: &'a [String],
    /// `var`-declared names anywhere in the body (function-scoped).
    locals: BTreeSet<String>,
    env: BTreeMap<String, AbstractVal>,
    fx: LocalEffects,
    /// Nesting depth of conditional/loop constructs; the SA010 dead-write
    /// check only tracks straight-line (depth-0) code.
    branch_depth: u32,
    /// Constant ids written on the current straight-line path with no
    /// intervening content read or user-function call. A second write to a
    /// member makes the earlier one dead (SA010).
    linear_writes: BTreeSet<String>,
}

/// Computes the syntactic effects of a declared function's body.
pub fn local_effects_of_function(decl: &FunctionDecl) -> LocalEffects {
    local_effects(&decl.params, &decl.body)
}

/// Computes the syntactic effects of a parameterless statement list (a
/// handler snippet or a `<script>` block's top level).
pub fn local_effects_of_snippet(body: &[Stmt]) -> LocalEffects {
    local_effects(&[], body)
}

fn local_effects(params: &[String], body: &[Stmt]) -> LocalEffects {
    let mut locals = BTreeSet::new();
    hoist_vars(body, &mut locals);
    let mut env = BTreeMap::new();
    for (i, p) in params.iter().enumerate() {
        env.insert(p.clone(), AbstractVal::Param(i));
    }
    let mut c = EffectCollector {
        params,
        locals,
        env,
        fx: LocalEffects::default(),
        branch_depth: 0,
        linear_writes: BTreeSet::new(),
    };
    for stmt in body {
        c.visit_stmt(stmt);
    }
    c.fx
}

/// `var` is function-scoped: collect every declared name up front so reads
/// before the declaration line resolve locally, as the interpreter does.
fn hoist_vars(body: &[Stmt], out: &mut BTreeSet<String>) {
    for stmt in body {
        match stmt {
            Stmt::VarDecl { name, .. } => {
                out.insert(name.clone());
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                hoist_vars(then_branch, out);
                hoist_vars(else_branch, out);
            }
            Stmt::While { body, .. } => hoist_vars(body, out),
            Stmt::For { init, body, .. } => {
                if let Some(s) = init {
                    hoist_vars(std::slice::from_ref(s), out);
                }
                hoist_vars(body, out);
            }
            Stmt::Block(b) => hoist_vars(b, out),
            _ => {}
        }
    }
}

impl EffectCollector<'_> {
    fn is_local(&self, name: &str) -> bool {
        self.locals.contains(name) || self.params.iter().any(|p| p == name)
    }

    fn visit_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::VarDecl { name, init, .. } => {
                let val = match init {
                    Some(e) => self.eval(e),
                    None => AbstractVal::Other,
                };
                self.env.insert(name.clone(), val);
            }
            Stmt::Expr(e) => {
                self.eval(e);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.eval(cond);
                self.branch_depth += 1;
                then_branch.iter().for_each(|s| self.visit_stmt(s));
                else_branch.iter().for_each(|s| self.visit_stmt(s));
                self.branch_depth -= 1;
            }
            Stmt::While { cond, body } => {
                self.fx.has_loop = true;
                self.eval(cond);
                self.branch_depth += 1;
                body.iter().for_each(|s| self.visit_stmt(s));
                self.branch_depth -= 1;
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
            } => {
                self.fx.has_loop = true;
                if let Some(s) = init {
                    self.visit_stmt(s);
                }
                if let Some(e) = cond {
                    self.eval(e);
                }
                self.branch_depth += 1;
                if let Some(e) = update {
                    self.eval(e);
                }
                body.iter().for_each(|s| self.visit_stmt(s));
                self.branch_depth -= 1;
            }
            Stmt::Return(Some(e)) => {
                self.eval(e);
            }
            Stmt::Block(b) => b.iter().for_each(|s| self.visit_stmt(s)),
            // Executing a nested function declaration installs it in the
            // *global* function table — a global write.
            Stmt::Function(decl) => {
                self.fx.writes_globals.insert(decl.name.clone());
            }
            Stmt::Return(None) | Stmt::Break | Stmt::Continue | Stmt::Empty => {}
        }
    }

    fn eval(&mut self, expr: &Expr) -> AbstractVal {
        match expr {
            Expr::Num(n) => AbstractVal::NumConst(*n),
            Expr::Str(s) => AbstractVal::StrConst(s.to_string()),
            Expr::Bool(_) | Expr::Null | Expr::Undefined => AbstractVal::Other,
            Expr::ArrayLit(items) => {
                items.iter().for_each(|e| {
                    self.eval(e);
                });
                AbstractVal::Other
            }
            Expr::ObjectLit(entries) => {
                entries.iter().for_each(|(_, e)| {
                    self.eval(e);
                });
                AbstractVal::Other
            }
            Expr::Index { object, index } => {
                self.eval(object);
                self.eval(index);
                AbstractVal::Other
            }
            Expr::Ident { name, .. } => self.read_ident(name),
            Expr::Binary { op, lhs, rhs } => {
                let a = self.eval(lhs);
                let b = self.eval(rhs);
                if *op == BinOp::Add {
                    fold_add(&a, &b)
                } else {
                    AbstractVal::Other
                }
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                self.eval(a);
                self.eval(b);
                AbstractVal::Other
            }
            Expr::Unary { op, expr } => {
                let v = self.eval(expr);
                match (op, v) {
                    (UnOp::Neg, AbstractVal::NumConst(n)) => AbstractVal::NumConst(-n),
                    _ => AbstractVal::Other,
                }
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                self.eval(cond);
                self.eval(then_expr);
                self.eval(else_expr);
                AbstractVal::Other
            }
            Expr::Assign { op, target, value } => {
                let v = self.eval(value);
                self.assign(
                    target,
                    if *op == AssignOp::Assign {
                        v
                    } else {
                        AbstractVal::Other
                    },
                );
                AbstractVal::Other
            }
            Expr::PostIncDec { target, .. } => {
                self.assign(target, AbstractVal::Other);
                AbstractVal::Other
            }
            Expr::Call { callee, args, line } => {
                let sources: Vec<ValueSource> = args
                    .iter()
                    .map(|a| {
                        let v = self.eval(a);
                        classify(&v)
                    })
                    .collect();
                self.fx.call_sites.push(CallSite {
                    callee: callee.clone(),
                    args: sources,
                    line: *line,
                });
                // The callee may read any element: earlier writes are live.
                if !is_builtin(callee) {
                    self.linear_writes.clear();
                }
                AbstractVal::Other
            }
            Expr::MethodCall {
                object,
                method,
                args,
                ..
            } => self.method_call(object, method, args),
            Expr::Member { object, .. } => {
                // Property reads (`.length`, `.responseText`, `.innerHTML`)
                // never mutate; the receiver read is recorded by `eval`.
                let obj = self.eval(object);
                // Reading an element's content keeps its last write live
                // for the SA010 dead-write check.
                if let AbstractVal::Element(ValueSource::Const(id)) = &obj {
                    self.linear_writes.remove(id);
                }
                AbstractVal::Other
            }
            Expr::New { class, args, .. } => {
                args.iter().for_each(|a| {
                    self.eval(a);
                });
                if class == "XMLHttpRequest" {
                    AbstractVal::Xhr(None)
                } else {
                    // Unknown constructors are a runtime error; the handler
                    // aborts, but the analysis stays conservative.
                    self.fx.opaque = true;
                    AbstractVal::Other
                }
            }
        }
    }

    fn read_ident(&mut self, name: &str) -> AbstractVal {
        if let Some(v) = self.env.get(name) {
            return v.clone();
        }
        if self.is_local(name) || is_host_global(name) {
            return AbstractVal::Other;
        }
        self.fx.reads_globals.insert(name.to_string());
        AbstractVal::Other
    }

    fn assign(&mut self, target: &AssignTarget, value: AbstractVal) {
        match target {
            AssignTarget::Ident(name) => {
                if self.is_local(name) {
                    self.env.insert(name.clone(), value);
                } else {
                    self.fx.writes_globals.insert(name.clone());
                }
            }
            AssignTarget::Member { object, prop } => {
                let obj = self.eval(object);
                if prop == "innerHTML" {
                    match obj {
                        AbstractVal::Element(src) => self.record_dom_write(src),
                        // The host ignores `innerHTML` on non-elements, but
                        // an unknown receiver might be an element.
                        AbstractVal::Xhr(_) => {}
                        _ => self.fx.dom_write_dynamic = true,
                    }
                } else {
                    self.mutate_receiver(object, &obj);
                }
            }
            AssignTarget::Index { object, index } => {
                let obj = self.eval(object);
                self.eval(index);
                self.mutate_receiver(object, &obj);
            }
        }
    }

    /// A property/element store (or mutating method) hit `object`. Arrays
    /// and dicts are `Rc`-shared, so mutating a global-held value is a
    /// global write; mutating anything we cannot trace is opaque.
    fn mutate_receiver(&mut self, object: &Expr, obj: &AbstractVal) {
        match obj {
            // Host objects swallow unknown property stores.
            AbstractVal::Element(_) | AbstractVal::Xhr(_) => {}
            _ => {
                if let Expr::Ident { name, .. } = object {
                    if !self.is_local(name) && !is_host_global(name) {
                        self.fx.writes_globals.insert(name.clone());
                        return;
                    }
                }
                self.fx.opaque = true;
            }
        }
    }

    fn record_dom_write(&mut self, src: ValueSource) {
        match src {
            ValueSource::Const(id) => {
                // Straight-line re-write of an id whose previous write no
                // read or call could have observed: the earlier one is dead.
                if self.branch_depth == 0 {
                    if !self.linear_writes.insert(id.clone()) {
                        self.fx.overwritten_ids.insert(id.clone());
                    }
                } else {
                    self.linear_writes.remove(&id);
                }
                self.fx.dom_write_ids.insert(id);
            }
            ValueSource::ConstPrefix(p) => {
                self.fx.dom_write_prefixes.insert(p);
            }
            ValueSource::Param(i) => {
                self.fx.dom_write_params.insert(i);
            }
            ValueSource::Dynamic => self.fx.dom_write_dynamic = true,
        }
    }

    fn record_dom_read(&mut self, src: &ValueSource) {
        match src {
            ValueSource::Const(id) => {
                self.fx.dom_read_ids.insert(id.clone());
            }
            ValueSource::ConstPrefix(p) => {
                self.fx.dom_read_prefixes.insert(p.clone());
            }
            ValueSource::Param(i) => {
                self.fx.dom_read_params.insert(*i);
            }
            ValueSource::Dynamic => self.fx.dom_read_dynamic = true,
        }
    }

    fn method_call(&mut self, object: &Expr, method: &str, args: &[Expr]) -> AbstractVal {
        // `document.getElementById(x)` / `Math.*` without treating the
        // namespace object as a value.
        if let Expr::Ident { name, .. } = object {
            if name == "document" && method == "getElementById" {
                let src = match args.first() {
                    Some(a) => {
                        let v = self.eval(a);
                        classify(&v)
                    }
                    None => ValueSource::Dynamic,
                };
                args.iter().skip(1).for_each(|a| {
                    self.eval(a);
                });
                // Locating an element is a read of that DOM location — a
                // write target is also in the read set.
                self.record_dom_read(&src);
                return AbstractVal::Element(src);
            }
            if name == "Math" {
                args.iter().for_each(|a| {
                    self.eval(a);
                });
                return AbstractVal::Other;
            }
        }
        let obj = self.eval(object);
        let arg_vals: Vec<AbstractVal> = args.iter().map(|a| self.eval(a)).collect();
        match &obj {
            AbstractVal::Xhr(url) => {
                match method {
                    "open" => {
                        let src = arg_vals
                            .get(1)
                            .map(classify)
                            .unwrap_or(ValueSource::Dynamic);
                        if let Expr::Ident { name, .. } = object {
                            if matches!(self.env.get(name), Some(AbstractVal::Xhr(_))) {
                                self.env.insert(name.clone(), AbstractVal::Xhr(Some(src)));
                            }
                        } else {
                            // `open` on an untracked XHR: assume the worst.
                            self.fx.xhr_dynamic = true;
                        }
                    }
                    "send" => match url {
                        Some(ValueSource::Const(u)) => {
                            self.fx.xhr_const_urls.insert(u.clone());
                        }
                        Some(ValueSource::ConstPrefix(u)) => {
                            self.fx.xhr_url_prefixes.insert(u.clone());
                        }
                        Some(ValueSource::Param(i)) => {
                            self.fx.xhr_url_params.insert(*i);
                        }
                        Some(ValueSource::Dynamic) | None => self.fx.xhr_dynamic = true,
                    },
                    // setRequestHeader / abort: no observable crawl effect.
                    _ => {}
                }
                AbstractVal::Other
            }
            AbstractVal::Element(src) => {
                // Only `getAttribute` exists on elements; anything else is a
                // runtime error (no state change either way). Either way it
                // observes the element: its last write is live.
                if let ValueSource::Const(id) = src {
                    self.linear_writes.remove(id);
                }
                AbstractVal::Other
            }
            _ => {
                if is_pure_method(method) {
                    return AbstractVal::Other;
                }
                if method == "send" || method == "open" {
                    // Matches the call-graph's conservative hot-node rule:
                    // an untyped receiver might be an XHR handed in.
                    self.fx.xhr_dynamic = true;
                    return AbstractVal::Other;
                }
                self.mutate_receiver(object, &obj);
                AbstractVal::Other
            }
        }
    }
}

fn fold_add(a: &AbstractVal, b: &AbstractVal) -> AbstractVal {
    use AbstractVal::{NumConst, Param, StrConst, StrPrefix};
    match (a, b) {
        (NumConst(x), NumConst(y)) => NumConst(x + y),
        (StrConst(x), StrConst(y)) => StrConst(format!("{x}{y}")),
        (StrConst(x), NumConst(y)) => StrConst(format!("{x}{}", format_number(*y))),
        (NumConst(x), StrConst(y)) => StrConst(format!("{}{y}", format_number(*x))),
        // A parameter tail keeps the constant head as a prefix pattern
        // (`'row_' + i` ids, `'/c?p=' + p` URL templates). Tails computed
        // from globals or other mutable state deliberately do NOT — those
        // stay `Other`, so hot nodes with state-derived URLs still classify
        // as `XhrClass::Dynamic` (SA006).
        (StrConst(x), Param(_)) => StrPrefix(x.clone()),
        // Once prefixed, appending anything preserves the prefix; a
        // constant head in front of a prefixed tail concatenates.
        (StrPrefix(x), _) => StrPrefix(x.clone()),
        (StrConst(x), StrPrefix(y)) => StrPrefix(format!("{x}{y}")),
        _ => AbstractVal::Other,
    }
}

// ---------------------------------------------------------------------------
// Interprocedural fixpoint
// ---------------------------------------------------------------------------

/// The result of the bottom-up effect fixpoint over an invocation graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EffectAnalysis {
    summaries: BTreeMap<String, EffectSummary>,
    defined: BTreeSet<String>,
}

impl EffectAnalysis {
    /// Runs the analysis: Tarjan SCC condensation of the call graph,
    /// processed callees-first; cyclic components iterate to a (finite,
    /// monotone) fixpoint and are flagged `may_not_terminate`.
    pub fn of(graph: &InvocationGraph) -> Self {
        let defined: BTreeSet<String> = graph.functions().map(|f| f.name.clone()).collect();
        let names: Vec<&str> = graph.functions().map(|f| f.name.as_str()).collect();
        let edges: BTreeMap<&str, Vec<&str>> = graph
            .functions()
            .map(|f| {
                let out: Vec<&str> = f
                    .effects
                    .call_sites
                    .iter()
                    .filter(|s| defined.contains(&s.callee))
                    .map(|s| s.callee.as_str())
                    .collect();
                (f.name.as_str(), out)
            })
            .collect();

        let mut summaries: BTreeMap<String, EffectSummary> = BTreeMap::new();
        for scc in sccs(&names, &edges) {
            let cyclic = scc.len() > 1
                || edges
                    .get(scc[0].as_str())
                    .is_some_and(|out| out.iter().any(|c| *c == scc[0]));
            // Iterate members until stable; all operations are unions over
            // finite sets, so this terminates.
            loop {
                let mut changed = false;
                for name in &scc {
                    let node = graph.function(name).expect("scc member exists");
                    let mut sum = seed_summary(&node.effects);
                    if cyclic {
                        sum.may_not_terminate = true;
                    }
                    apply_call_sites(&mut sum, &node.effects.call_sites, &summaries, &defined);
                    sum.widen();
                    if summaries.get(name.as_str()) != Some(&sum) {
                        summaries.insert(name.clone(), sum);
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
        }
        EffectAnalysis { summaries, defined }
    }

    /// The summary for one function, if it exists.
    pub fn summary(&self, name: &str) -> Option<&EffectSummary> {
        self.summaries.get(name)
    }

    /// All summaries, ordered by function name.
    pub fn summaries(&self) -> impl Iterator<Item = (&str, &EffectSummary)> {
        self.summaries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Summarizes a parameterless top-level snippet (an event-handler
    /// attribute) against this analysis' function summaries.
    pub fn snippet_summary(&self, program: &Program) -> EffectSummary {
        let local = local_effects_of_snippet(&program.body);
        // Top-level function declarations in a snippet hoist into the
        // global table — already recorded as global writes by the
        // collector, which keeps the snippet impure.
        let mut sum = seed_summary(&local);
        apply_call_sites(&mut sum, &local.call_sites, &self.summaries, &self.defined);
        sum.widen();
        sum
    }

    /// Parses and summarizes handler source text.
    pub fn snippet_summary_src(&self, code: &str) -> Result<EffectSummary, JsError> {
        Ok(self.snippet_summary(&parse_program(code)?))
    }
}

fn seed_summary(local: &LocalEffects) -> EffectSummary {
    EffectSummary {
        dom_write_ids: local.dom_write_ids.clone(),
        dom_write_prefixes: local.dom_write_prefixes.clone(),
        dom_write_params: local.dom_write_params.clone(),
        dom_write_dynamic: local.dom_write_dynamic,
        dom_read_ids: local.dom_read_ids.clone(),
        dom_read_prefixes: local.dom_read_prefixes.clone(),
        dom_read_params: local.dom_read_params.clone(),
        dom_read_dynamic: local.dom_read_dynamic,
        xhr_const_urls: local.xhr_const_urls.clone(),
        xhr_url_prefixes: local.xhr_url_prefixes.clone(),
        xhr_url_params: local.xhr_url_params.clone(),
        xhr_dynamic: local.xhr_dynamic,
        reads_globals: local.reads_globals.clone(),
        writes_globals: local.writes_globals.clone(),
        calls_undefined: BTreeSet::new(),
        may_not_terminate: local.has_loop,
        opaque: local.opaque,
    }
}

/// Folds each call site's callee summary into `sum`, substituting the
/// site's classified arguments into the callee's parameter-relative
/// effects.
fn apply_call_sites(
    sum: &mut EffectSummary,
    sites: &[CallSite],
    summaries: &BTreeMap<String, EffectSummary>,
    defined: &BTreeSet<String>,
) {
    for site in sites {
        if !defined.contains(&site.callee) {
            if !is_builtin(&site.callee) {
                sum.calls_undefined.insert(site.callee.clone());
            }
            continue;
        }
        // In-SCC callees may not have a summary yet on the first sweep;
        // the surrounding fixpoint re-applies until stable.
        let Some(callee) = summaries.get(&site.callee) else {
            continue;
        };
        sum.dom_write_ids
            .extend(callee.dom_write_ids.iter().cloned());
        sum.dom_write_prefixes
            .extend(callee.dom_write_prefixes.iter().cloned());
        sum.dom_write_dynamic |= callee.dom_write_dynamic;
        for p in &callee.dom_write_params {
            match site.args.get(*p) {
                Some(ValueSource::Const(id)) => {
                    sum.dom_write_ids.insert(id.clone());
                }
                Some(ValueSource::ConstPrefix(pre)) => {
                    sum.dom_write_prefixes.insert(pre.clone());
                }
                Some(ValueSource::Param(i)) => {
                    sum.dom_write_params.insert(*i);
                }
                Some(ValueSource::Dynamic) | None => sum.dom_write_dynamic = true,
            }
        }
        sum.dom_read_ids.extend(callee.dom_read_ids.iter().cloned());
        sum.dom_read_prefixes
            .extend(callee.dom_read_prefixes.iter().cloned());
        sum.dom_read_dynamic |= callee.dom_read_dynamic;
        for p in &callee.dom_read_params {
            match site.args.get(*p) {
                Some(ValueSource::Const(id)) => {
                    sum.dom_read_ids.insert(id.clone());
                }
                Some(ValueSource::ConstPrefix(pre)) => {
                    sum.dom_read_prefixes.insert(pre.clone());
                }
                Some(ValueSource::Param(i)) => {
                    sum.dom_read_params.insert(*i);
                }
                Some(ValueSource::Dynamic) | None => sum.dom_read_dynamic = true,
            }
        }
        sum.xhr_const_urls
            .extend(callee.xhr_const_urls.iter().cloned());
        sum.xhr_url_prefixes
            .extend(callee.xhr_url_prefixes.iter().cloned());
        sum.xhr_dynamic |= callee.xhr_dynamic;
        for p in &callee.xhr_url_params {
            match site.args.get(*p) {
                Some(ValueSource::Const(url)) => {
                    sum.xhr_const_urls.insert(url.clone());
                }
                Some(ValueSource::ConstPrefix(pre)) => {
                    sum.xhr_url_prefixes.insert(pre.clone());
                }
                Some(ValueSource::Param(i)) => {
                    sum.xhr_url_params.insert(*i);
                }
                Some(ValueSource::Dynamic) | None => sum.xhr_dynamic = true,
            }
        }
        sum.reads_globals
            .extend(callee.reads_globals.iter().cloned());
        sum.writes_globals
            .extend(callee.writes_globals.iter().cloned());
        sum.calls_undefined
            .extend(callee.calls_undefined.iter().cloned());
        sum.may_not_terminate |= callee.may_not_terminate;
        sum.opaque |= callee.opaque;
    }
}

/// Iterative Tarjan SCC. Components are emitted callees-first (reverse
/// topological order of the condensation), which is exactly the order the
/// bottom-up fixpoint wants.
fn sccs(names: &[&str], edges: &BTreeMap<&str, Vec<&str>>) -> Vec<Vec<String>> {
    #[derive(Default, Clone)]
    struct NodeState {
        index: Option<usize>,
        lowlink: usize,
        on_stack: bool,
    }
    let idx_of: BTreeMap<&str, usize> = names.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let mut state = vec![NodeState::default(); names.len()];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out: Vec<Vec<String>> = Vec::new();

    for start in 0..names.len() {
        if state[start].index.is_some() {
            continue;
        }
        // (node, next-successor-position) work stack.
        let mut work: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut pos)) = work.last_mut() {
            if *pos == 0 {
                state[v].index = Some(next_index);
                state[v].lowlink = next_index;
                next_index += 1;
                stack.push(v);
                state[v].on_stack = true;
            }
            let succs = &edges[names[v]];
            if let Some(w_name) = succs.get(*pos) {
                *pos += 1;
                let w = idx_of[w_name];
                if state[w].index.is_none() {
                    work.push((w, 0));
                } else if state[w].on_stack {
                    state[v].lowlink = state[v].lowlink.min(state[w].index.unwrap());
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    state[parent].lowlink = state[parent].lowlink.min(state[v].lowlink);
                }
                if state[v].lowlink == state[v].index.unwrap() {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack");
                        state[w].on_stack = false;
                        comp.push(names[w].to_string());
                        if w == v {
                            break;
                        }
                    }
                    comp.sort();
                    out.push(comp);
                }
            }
        }
    }
    out
}

/// Graph-level diagnostics: calls to undefined functions (SA002), handler
/// redefinitions across `<script>` blocks (SA003), dynamically-formed hot
/// calls (SA006), dead straight-line writes (SA010), global self-races
/// (SA011), and unbounded write sets (SA012). Page-level lints that need
/// the document (dead functions, unknown DOM ids, stateless handlers,
/// write-set conflicts between co-bound handlers) live in `ajax-crawl`.
pub fn graph_diagnostics(graph: &InvocationGraph, analysis: &EffectAnalysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in graph.functions() {
        if let Some(sum) = analysis.summary(&f.name) {
            for missing in &sum.calls_undefined {
                out.push(Diagnostic::new(
                    Lint::CallsUndefined,
                    f.name.clone(),
                    format!("calls undefined function `{missing}`"),
                ));
            }
            if f.direct_ajax && sum.xhr_class() == XhrClass::Dynamic {
                out.push(Diagnostic::new(
                    Lint::DynamicHotCall,
                    f.name.clone(),
                    "hot node sends XHRs with computed URLs; the hot-node cache may never re-hit",
                ));
            }
            let races: Vec<&str> = sum
                .reads_globals
                .intersection(&sum.writes_globals)
                .map(|g| g.as_str())
                .collect();
            if !races.is_empty() {
                out.push(Diagnostic::new(
                    Lint::SelfRace,
                    f.name.clone(),
                    format!(
                        "reads and writes the same global(s) `{}`; firing twice is not idempotent",
                        races.join("`, `")
                    ),
                ));
            }
            if sum.dom_write_dynamic {
                out.push(Diagnostic::new(
                    Lint::UnboundedWriteSet,
                    f.name.clone(),
                    "DOM write set is unbounded (`*`); equivalence and commutativity pruning \
                     cannot apply",
                ));
            }
        }
        for id in &f.effects.overwritten_ids {
            out.push(Diagnostic::new(
                Lint::AlwaysOverwritten,
                f.name.clone(),
                format!(
                    "`#{id}` is written twice in straight-line code with no intervening read \
                     or call; the first write is dead"
                ),
            ));
        }
    }
    for r in &graph.redefinitions {
        out.push(Diagnostic::new(
            Lint::HandlerRedefinition,
            r.name.clone(),
            format!(
                "function redefined (line {} shadows line {}); the later definition wins",
                r.line, r.first_line
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str) -> (InvocationGraph, EffectAnalysis) {
        let g = InvocationGraph::from_source(src).unwrap();
        let a = EffectAnalysis::of(&g);
        (g, a)
    }

    const VIDSHARE_STYLE: &str = r#"
        var currentPage = 1;
        var totalPages = 4;
        function showLoading(div_id) {
            var box = document.getElementById(div_id);
            box.innerHTML = '<p>Loading...</p>';
        }
        function getUrlXMLResponseAndFillDiv(url, div_id) {
            var xmlHttpReq = new XMLHttpRequest();
            xmlHttpReq.open("GET", url, false);
            xmlHttpReq.send(null);
            var box = document.getElementById(div_id);
            box.innerHTML = xmlHttpReq.responseText;
        }
        function urchinTracker(tag) { var t = tag; return t; }
        function gotoPage(p) {
            if (p < 1 || p > totalPages) { return; }
            showLoading('recent_comments');
            getUrlXMLResponseAndFillDiv('/comments?v=1&p=' + p, 'recent_comments');
            urchinTracker('comments-page-' + p);
            currentPage = p;
        }
        function nextPage() { gotoPage(currentPage + 1); }
        function highlightTitle() { urchinTracker('title-hover'); }
    "#;

    #[test]
    fn param_relative_effects_collected() {
        let (_, a) = analyze(VIDSHARE_STYLE);
        let fill = a.summary("getUrlXMLResponseAndFillDiv").unwrap();
        assert_eq!(fill.xhr_url_params, BTreeSet::from([0]));
        assert_eq!(fill.dom_write_params, BTreeSet::from([1]));
        assert!(!fill.xhr_dynamic && !fill.dom_write_dynamic);
        assert_eq!(fill.xhr_class(), XhrClass::ParamDerived);
    }

    #[test]
    fn constants_propagate_through_calls() {
        let (_, a) = analyze(VIDSHARE_STYLE);
        let show = a.summary("showLoading").unwrap();
        assert_eq!(show.dom_write_params, BTreeSet::from([0]));
        let goto = a.summary("gotoPage").unwrap();
        // showLoading('recent_comments') resolves the param to a constant.
        assert!(goto.dom_write_ids.contains("recent_comments"));
        assert!(goto.dom_write_params.is_empty());
        // The URL is '/comments...' + p with a parameter tail: a template.
        assert!(!goto.xhr_dynamic);
        assert!(goto.xhr_url_prefixes.contains("/comments?v=1&p="));
        assert_eq!(goto.xhr_class(), XhrClass::ParamDerived);
        assert!(goto.writes_globals.contains("currentPage"));
        assert!(goto.reads_globals.contains("totalPages"));
    }

    #[test]
    fn purity_verdicts_match_runtime_semantics() {
        let (_, a) = analyze(VIDSHARE_STYLE);
        assert!(a.summary("urchinTracker").unwrap().is_pure());
        assert!(a.summary("highlightTitle").unwrap().is_pure());
        assert!(!a.summary("showLoading").unwrap().is_pure(), "DOM write");
        assert!(
            !a.summary("gotoPage").unwrap().is_pure(),
            "network + global"
        );
        assert!(!a.summary("nextPage").unwrap().is_pure(), "transitively");
    }

    #[test]
    fn constant_url_resolves_two_hops() {
        let (_, a) = analyze(
            "function getUrl(url) { var x = new XMLHttpRequest(); x.open('GET', url, false); x.send(null); }
             function fill(u, d) { getUrl(u); }
             function next() { fill('/c?p=2', 'box'); }",
        );
        assert_eq!(
            a.summary("next").unwrap().xhr_const_urls,
            BTreeSet::from(["/c?p=2".to_string()])
        );
        assert_eq!(a.summary("next").unwrap().xhr_class(), XhrClass::Constant);
        assert_eq!(
            a.summary("fill").unwrap().xhr_url_params,
            BTreeSet::from([0])
        );
    }

    #[test]
    fn string_folding_matches_interpreter_concat() {
        let (_, a) =
            analyze("function f(d) { document.getElementById('pane' + 2).innerHTML = d; }");
        let s = a.summary("f").unwrap();
        assert!(
            s.dom_write_ids.contains("pane2"),
            "got {:?}",
            s.dom_write_ids
        );
    }

    #[test]
    fn direct_recursion_flagged_not_looping_forever() {
        let (_, a) = analyze("function f(n) { if (n) { f(n - 1); } return n; }");
        let s = a.summary("f").unwrap();
        assert!(s.may_not_terminate);
        assert!(s.is_pure(), "recursion alone does not break purity");
    }

    #[test]
    fn mutual_recursion_converges() {
        let (_, a) = analyze(
            "function a(n) { if (n) { b(n - 1); } }
             function b(n) { net.send(n); a(n); }
             var net = 0;",
        );
        for name in ["a", "b"] {
            let s = a.summary(name).unwrap();
            assert!(s.may_not_terminate, "{name} in a cycle");
            assert!(s.xhr_dynamic, "{name} reaches the send");
            assert!(!s.is_pure());
        }
    }

    #[test]
    fn loops_set_may_not_terminate() {
        let (_, a) = analyze("function spin() { while (1) { var x = 1; } }");
        let s = a.summary("spin").unwrap();
        assert!(s.may_not_terminate);
        assert!(s.is_pure(), "a spinning handler still mutates nothing");
    }

    #[test]
    fn undefined_calls_break_purity() {
        let (g, a) = analyze("function f() { ghost(); }");
        let s = a.summary("f").unwrap();
        assert_eq!(s.calls_undefined, BTreeSet::from(["ghost".to_string()]));
        assert!(!s.is_pure());
        let diags = graph_diagnostics(&g, &a);
        assert!(diags
            .iter()
            .any(|d| d.lint == Lint::CallsUndefined && d.severity() == Severity::Error));
    }

    #[test]
    fn builtins_are_not_undefined() {
        let (_, a) = analyze("function f(s) { return parseInt(s) + Number(s); }");
        assert!(a.summary("f").unwrap().is_pure());
    }

    #[test]
    fn param_shadowing_resolves_calls_globally() {
        // The interpreter dispatches calls through the global function
        // table — a parameter named like a function does not shadow it.
        let (_, a) = analyze("function g() { return 1; } function f(g) { return g(); }");
        let s = a.summary("f").unwrap();
        assert!(s.calls_undefined.is_empty(), "g resolves to the global");
        assert!(s.is_pure());
    }

    #[test]
    fn shared_array_mutation_is_a_global_write() {
        let (_, a) = analyze(
            "var history = [];
             function track(name) { history.push(name); }
             function peek() { return history.length; }",
        );
        assert!(a
            .summary("track")
            .unwrap()
            .writes_globals
            .contains("history"));
        assert!(!a.summary("track").unwrap().is_pure());
        let peek = a.summary("peek").unwrap();
        assert!(peek.reads_globals.contains("history"));
        assert!(peek.is_pure(), "length read is pure");
    }

    #[test]
    fn local_array_mutation_is_opaque_not_global() {
        // A local array could alias a global (Rc-shared), so mutation
        // through an untraced local stays conservative.
        let (_, a) = analyze("var g = []; function f() { var l = g; l.push(1); }");
        let s = a.summary("f").unwrap();
        assert!(s.opaque);
        assert!(!s.is_pure());
    }

    #[test]
    fn snippet_summary_resolves_against_graph() {
        let (_, a) = analyze(VIDSHARE_STYLE);
        assert!(a.snippet_summary_src("highlightTitle()").unwrap().is_pure());
        let goto = a.snippet_summary_src("gotoPage(2)").unwrap();
        assert!(!goto.is_pure());
        assert!(goto.reaches_network());
        assert!(
            a.snippet_summary_src("").unwrap().is_pure(),
            "empty handler"
        );
        let unknown = a.snippet_summary_src("mystery()").unwrap();
        assert!(!unknown.is_pure());
    }

    #[test]
    fn redefinitions_recorded_across_merge() {
        let mut g = InvocationGraph::from_source("function f() { return 1; }").unwrap();
        let g2 =
            InvocationGraph::from_source("function f() { return 2; }\nfunction h() {}").unwrap();
        g.merge(g2);
        assert_eq!(g.redefinitions.len(), 1);
        assert_eq!(g.redefinitions[0].name, "f");
        let a = EffectAnalysis::of(&g);
        let diags = graph_diagnostics(&g, &a);
        assert!(diags
            .iter()
            .any(|d| d.lint == Lint::HandlerRedefinition && d.subject == "f"));
    }

    #[test]
    fn redefinition_within_one_script_recorded() {
        let g =
            InvocationGraph::from_source("function f() {} function f(x) { return x; }").unwrap();
        assert_eq!(g.redefinitions.len(), 1);
        // JS semantics: the later definition wins.
        assert_eq!(g.function("f").unwrap().params.len(), 1);
    }

    #[test]
    fn dynamic_hot_call_linted() {
        let (g, a) = analyze(
            "var page = 1;
             function hot() { var x = new XMLHttpRequest(); x.open('GET', '/p?' + page, false); x.send(null); }",
        );
        let diags = graph_diagnostics(&g, &a);
        assert!(diags.iter().any(|d| d.lint == Lint::DynamicHotCall));
        assert_eq!(a.summary("hot").unwrap().xhr_class(), XhrClass::Dynamic);
    }

    #[test]
    fn prefix_writes_collected_from_param_tails() {
        // The gallery idiom: one handler per strip row, each writing a
        // `caption_<i>` div located by string concatenation.
        let (_, a) = analyze(
            "var captions = ['a', 'b'];
             function showCaption(i) {
                 document.getElementById('caption_' + i).innerHTML = captions[i];
             }",
        );
        let s = a.summary("showCaption").unwrap();
        assert_eq!(
            s.dom_write_prefixes,
            BTreeSet::from(["caption_".to_string()])
        );
        assert!(!s.dom_write_dynamic);
        assert_eq!(s.write_locs().render(), vec!["#caption_*"]);
        // The write target is also read (located), and the summary says so.
        assert_eq!(
            s.dom_read_prefixes,
            BTreeSet::from(["caption_".to_string()])
        );
        assert!(s.read_locs().render().contains(&"#caption_*".to_string()));
    }

    #[test]
    fn url_template_resolves_two_hops() {
        let (_, a) = analyze(
            "function getUrl(url) { var x = new XMLHttpRequest(); x.open('GET', url, false); x.send(null); }
             function load(p) { getUrl('/photo?id=' + p); }
             function first() { load(0); }",
        );
        let load = a.summary("load").unwrap();
        assert_eq!(
            load.xhr_url_prefixes,
            BTreeSet::from(["/photo?id=".to_string()])
        );
        assert_eq!(load.xhr_class(), XhrClass::ParamDerived);
        // `load(0)` resolves the template tail to a constant? No — the
        // prefix was absolute by the time it reached `load`'s summary, so
        // callers inherit the template verbatim.
        let first = a.summary("first").unwrap();
        assert_eq!(
            first.xhr_url_prefixes,
            BTreeSet::from(["/photo?id=".to_string()])
        );
        assert!(!first.xhr_dynamic);
    }

    #[test]
    fn const_prefix_arguments_substitute_into_callee_params() {
        let (_, a) = analyze(
            "function f(p) { document.getElementById(p).innerHTML = 'x'; }
             function g(k) { f('row_' + k); }",
        );
        let g = a.summary("g").unwrap();
        assert_eq!(g.dom_write_prefixes, BTreeSet::from(["row_".to_string()]));
        assert!(g.dom_write_params.is_empty());
        assert!(!g.dom_write_dynamic);
    }

    #[test]
    fn global_tails_stay_dynamic_not_prefixed() {
        // '/p?' + page with a *global* tail must not become a template —
        // the hot-node cache genuinely may never re-hit for it (SA006).
        let (_, a) = analyze(
            "var page = 1;
             function hot() { var x = new XMLHttpRequest(); x.open('GET', '/p?' + page, false); x.send(null); }",
        );
        let s = a.summary("hot").unwrap();
        assert!(s.xhr_dynamic);
        assert!(s.xhr_url_prefixes.is_empty());
    }

    #[test]
    fn reads_and_writes_form_disjoint_loc_sets() {
        let (_, a) = analyze(
            "function peek() { return document.getElementById('status').innerHTML; }
             function poke(msg) { document.getElementById('log').innerHTML = msg; }",
        );
        let peek = a.summary("peek").unwrap();
        assert_eq!(peek.dom_read_ids, BTreeSet::from(["status".to_string()]));
        assert!(peek.write_locs().is_empty());
        assert_eq!(peek.read_locs().render(), vec!["#status"]);
        let poke = a.summary("poke").unwrap();
        assert_eq!(poke.write_locs().render(), vec!["#log"]);
        // Disjoint read/write sets: the pair commutes.
        assert!(!peek.read_locs().overlaps(&poke.write_locs()));
        assert!(!poke.read_locs().overlaps(&peek.write_locs()));
    }

    #[test]
    fn always_overwritten_write_linted() {
        let (g, a) = analyze(
            "function flash() {
                 document.getElementById('box').innerHTML = 'loading';
                 document.getElementById('box').innerHTML = 'done';
             }",
        );
        assert_eq!(
            g.function("flash").unwrap().effects.overwritten_ids,
            BTreeSet::from(["box".to_string()])
        );
        let diags = graph_diagnostics(&g, &a);
        assert!(diags
            .iter()
            .any(|d| d.lint == Lint::AlwaysOverwritten && d.subject == "flash"));
    }

    #[test]
    fn intervening_read_call_or_branch_suppresses_sa010() {
        // A content read between the writes keeps the first one live.
        let (g1, _) = analyze(
            "function f() {
                 document.getElementById('box').innerHTML = 'a';
                 var t = document.getElementById('box').innerHTML;
                 document.getElementById('box').innerHTML = t + 'b';
             }",
        );
        assert!(g1.function("f").unwrap().effects.overwritten_ids.is_empty());
        // A user-function call may observe the element.
        let (g2, _) = analyze(
            "function probe() { return document.getElementById('box').innerHTML; }
             function f() {
                 document.getElementById('box').innerHTML = 'a';
                 probe();
                 document.getElementById('box').innerHTML = 'b';
             }",
        );
        assert!(g2.function("f").unwrap().effects.overwritten_ids.is_empty());
        // Conditional writes are not straight-line.
        let (g3, _) = analyze(
            "function f(x) {
                 if (x) { document.getElementById('box').innerHTML = 'a'; }
                 document.getElementById('box').innerHTML = 'b';
             }",
        );
        assert!(g3.function("f").unwrap().effects.overwritten_ids.is_empty());
    }

    #[test]
    fn self_race_on_shared_global_linted() {
        let (g, a) = analyze("var n = 0; function bump() { n = n + 1; }");
        let s = a.summary("bump").unwrap();
        assert!(s.reads_globals.contains("n") && s.writes_globals.contains("n"));
        let diags = graph_diagnostics(&g, &a);
        let race = diags.iter().find(|d| d.lint == Lint::SelfRace).unwrap();
        assert_eq!(race.subject, "bump");
        assert_eq!(race.severity(), Severity::Info);
    }

    #[test]
    fn unbounded_write_set_linted() {
        let (g, a) = analyze(
            "var target = 'somewhere';
             function blast(msg) { document.getElementById(target).innerHTML = msg; }",
        );
        assert!(a.summary("blast").unwrap().dom_write_dynamic);
        assert!(a.summary("blast").unwrap().write_locs().is_unbounded());
        let diags = graph_diagnostics(&g, &a);
        assert!(diags
            .iter()
            .any(|d| d.lint == Lint::UnboundedWriteSet && d.subject == "blast"));
    }

    #[test]
    fn widening_collapses_oversized_channels() {
        // A call fan-in larger than WIDEN_CAP collapses the channel to the
        // dynamic flag instead of growing the summary without bound.
        let mut src = String::new();
        let mut body = String::new();
        for i in 0..(WIDEN_CAP + 4) {
            src.push_str(&format!(
                "function w{i}() {{ document.getElementById('cell_{i}').innerHTML = 'x'; }}\n"
            ));
            body.push_str(&format!("w{i}();\n"));
        }
        src.push_str(&format!("function all() {{ {body} }}"));
        let (_, a) = analyze(&src);
        let all = a.summary("all").unwrap();
        assert!(all.dom_write_dynamic, "widened past the cap");
        assert!(all.dom_write_ids.is_empty());
        assert!(all.write_locs().is_unbounded());
        // Under the cap: untouched.
        let w0 = a.summary("w0").unwrap();
        assert_eq!(w0.dom_write_ids.len(), 1);
        assert!(!w0.dom_write_dynamic);
    }

    #[test]
    fn recursive_prefix_construction_converges() {
        // Mutually recursive functions passing prefixed ids around: the
        // fixpoint must converge (prefixes are absolute once formed) and
        // both members of the cycle see the union.
        let (_, a) = analyze(
            "function even(i) { document.getElementById('row_' + i).innerHTML = 'e'; odd(i); }
             function odd(i) { document.getElementById('col_' + i).innerHTML = 'o'; even(i); }",
        );
        for name in ["even", "odd"] {
            let s = a.summary(name).unwrap();
            assert_eq!(
                s.dom_write_prefixes,
                BTreeSet::from(["row_".to_string(), "col_".to_string()]),
                "{name} sees the whole cycle"
            );
            assert!(s.may_not_terminate);
            assert!(!s.dom_write_dynamic);
        }
    }

    /// Channel-wise subsumption: a widened-to-dynamic channel covers any
    /// concrete one; otherwise the concrete sets must not shrink.
    #[allow(clippy::too_many_arguments)]
    fn channel_subsumes(
        b_dyn: bool,
        a_dyn: bool,
        b_ids: &BTreeSet<String>,
        a_ids: &BTreeSet<String>,
        b_pre: &BTreeSet<String>,
        a_pre: &BTreeSet<String>,
        b_params: &BTreeSet<usize>,
        a_params: &BTreeSet<usize>,
    ) -> bool {
        b_dyn
            || (!a_dyn
                && a_ids.is_subset(b_ids)
                && a_pre.is_subset(b_pre)
                && a_params.is_subset(b_params))
    }

    /// Structural subsumption: every effect `a` claims, `b` claims too.
    fn subsumes(b: &EffectSummary, a: &EffectSummary) -> bool {
        channel_subsumes(
            b.dom_write_dynamic,
            a.dom_write_dynamic,
            &b.dom_write_ids,
            &a.dom_write_ids,
            &b.dom_write_prefixes,
            &a.dom_write_prefixes,
            &b.dom_write_params,
            &a.dom_write_params,
        ) && channel_subsumes(
            b.dom_read_dynamic,
            a.dom_read_dynamic,
            &b.dom_read_ids,
            &a.dom_read_ids,
            &b.dom_read_prefixes,
            &a.dom_read_prefixes,
            &b.dom_read_params,
            &a.dom_read_params,
        ) && channel_subsumes(
            b.xhr_dynamic,
            a.xhr_dynamic,
            &b.xhr_const_urls,
            &a.xhr_const_urls,
            &b.xhr_url_prefixes,
            &a.xhr_url_prefixes,
            &b.xhr_url_params,
            &a.xhr_url_params,
        ) && a.reads_globals.is_subset(&b.reads_globals)
            && a.writes_globals.is_subset(&b.writes_globals)
            && a.calls_undefined.is_subset(&b.calls_undefined)
            && (!a.opaque || b.opaque)
            && (!a.may_not_terminate || b.may_not_terminate)
    }

    #[test]
    fn fixpoint_is_deterministic_and_monotone_under_program_growth() {
        // Seeded sweep: generate small programs, analyze twice (results must
        // be identical), then append effect-only statements to bodies and
        // check every summary grows monotonically.
        let mut rng: u64 = 0x9e3779b97f4a7c15;
        let mut next = move || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (rng >> 33) as usize
        };
        for _case in 0..40 {
            let nfuncs = 2 + next() % 4;
            let mut bodies: Vec<Vec<String>> = Vec::new();
            for i in 0..nfuncs {
                let mut stmts = Vec::new();
                for _ in 0..(next() % 3) {
                    stmts.push(gen_stmt(next(), i, nfuncs));
                }
                bodies.push(stmts);
            }
            let render = |bodies: &[Vec<String>]| {
                let mut s = String::from("var shared = 0;\n");
                for (i, b) in bodies.iter().enumerate() {
                    s.push_str(&format!("function f{i}(p) {{ {} }}\n", b.join(" ")));
                }
                s
            };
            let src1 = render(&bodies);
            let (_, a1) = analyze(&src1);
            let (_, a2) = analyze(&src1);
            assert_eq!(a1, a2, "analysis must be deterministic\n{src1}");

            // Grow: append effect statements (never declarations) so every
            // old behavior remains possible.
            let mut grown = bodies.clone();
            for (i, b) in grown.iter_mut().enumerate() {
                if next() % 2 == 0 {
                    b.push(gen_stmt(next(), i, nfuncs));
                }
            }
            let src2 = render(&grown);
            let (_, b) = analyze(&src2);
            for i in 0..nfuncs {
                let name = format!("f{i}");
                let old = a1.summary(&name).unwrap();
                let new = b.summary(&name).unwrap();
                assert!(
                    subsumes(new, old),
                    "appending statements must not shrink {name}'s summary\n\
                     old: {old:?}\nnew: {new:?}\nbefore:\n{src1}\nafter:\n{src2}"
                );
            }
        }
    }

    /// One random effect-only statement for the monotonicity sweep.
    fn gen_stmt(r: usize, me: usize, nfuncs: usize) -> String {
        match r % 6 {
            0 => format!("document.getElementById('id_{}').innerHTML = 'v';", r % 5),
            1 => format!(
                "document.getElementById('pre{}_' + p).innerHTML = 'v';",
                r % 3
            ),
            2 => "shared = shared + 1;".to_string(),
            3 => {
                let callee = (me + 1 + r % nfuncs.max(1)) % nfuncs;
                format!("f{callee}('arg_{}');", r % 4)
            }
            4 => format!("var q{} = document.getElementById(p).innerHTML;", r % 97),
            _ => "var x = new XMLHttpRequest(); x.open('GET', '/u?k=' + p, false); x.send(null);"
                .to_string(),
        }
    }

    #[test]
    fn diagnostic_display_format() {
        let d = Diagnostic::new(Lint::CallsUndefined, "f", "calls undefined function `g`");
        assert_eq!(
            d.to_string(),
            "error[SA002] f: calls undefined function `g`"
        );
        assert!(Severity::Error > Severity::Warning && Severity::Warning > Severity::Info);
    }
}
