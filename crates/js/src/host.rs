//! The host-embedding protocol.
//!
//! The interpreter is deliberately ignorant of DOM, network or timers — all
//! of those come from the embedder (the crawler) through the [`Host`] trait.
//! The interpreter hands every host call a [`HostCtx`] exposing the current
//! JavaScript call stack, which is what the hot-node mechanism (thesis ch. 4)
//! inspects: when the `XMLHttpRequest` host object is asked to `send()`, it
//! reads the topmost user frame (function name + rendered actual arguments)
//! and uses it as the hot-node cache key.

use crate::error::JsError;
use crate::interp::FrameInfo;
use crate::value::Value;

/// Identifier of a host-managed object (an XHR instance, a DOM element…).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u32);

/// Context passed to every host call.
#[derive(Debug)]
pub struct HostCtx<'a> {
    /// The interpreter call stack, innermost frame last. Event-handler
    /// snippets executing at top level have an empty stack.
    pub stack: &'a [FrameInfo],
    /// Total interpreter steps executed so far (virtual CPU cost).
    pub steps: u64,
}

impl HostCtx<'_> {
    /// The topmost (currently executing) user function frame, if any —
    /// the thesis' `StackInfo.getHotNodeInfo()`.
    pub fn top_frame(&self) -> Option<&FrameInfo> {
        self.stack.last()
    }
}

/// Services the embedder provides to scripts.
///
/// All methods have reasonable defaults (errors / `Undefined`), so hosts only
/// implement what their pages need.
pub trait Host {
    /// Invokes a native global function, e.g. `urchinTracker(...)`.
    fn call_native(
        &mut self,
        name: &str,
        args: &[Value],
        ctx: &HostCtx<'_>,
    ) -> Result<Value, JsError> {
        let _ = (args, ctx);
        Err(JsError::reference(format!("{name} is not defined")))
    }

    /// True when `name` is a native global this host provides. Used by the
    /// interpreter to route calls: user functions shadow natives.
    fn has_native(&self, name: &str) -> bool {
        let _ = name;
        false
    }

    /// Constructs a host object, e.g. `new XMLHttpRequest()`.
    fn construct(
        &mut self,
        class: &str,
        args: &[Value],
        ctx: &HostCtx<'_>,
    ) -> Result<Value, JsError> {
        let _ = (args, ctx);
        Err(JsError::reference(format!("{class} is not a constructor")))
    }

    /// Calls a method on a host object, e.g. `xhr.open("GET", url, false)`.
    fn call_method(
        &mut self,
        obj: ObjId,
        method: &str,
        args: &[Value],
        ctx: &HostCtx<'_>,
    ) -> Result<Value, JsError> {
        let _ = (obj, args, ctx);
        Err(JsError::type_error(format!("no method {method}")))
    }

    /// Reads a property of a host object, e.g. `xhr.responseText`.
    fn get_property(&mut self, obj: ObjId, prop: &str) -> Result<Value, JsError> {
        let _ = obj;
        let _ = prop;
        Ok(Value::Undefined)
    }

    /// Writes a property of a host object, e.g. `el.innerHTML = "..."`.
    fn set_property(
        &mut self,
        obj: ObjId,
        prop: &str,
        value: Value,
        ctx: &HostCtx<'_>,
    ) -> Result<(), JsError> {
        let _ = (obj, value, ctx);
        Err(JsError::type_error(format!("cannot set property {prop}")))
    }

    /// Reads a *global* host value for an identifier the interpreter cannot
    /// resolve (e.g. a `document` global). Return `None` to signal a
    /// reference error.
    fn get_global(&mut self, name: &str) -> Option<Value> {
        let _ = name;
        None
    }
}

/// A host that provides nothing. Scripts using host features fail cleanly.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullHost;

impl Host for NullHost {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_host_rejects_everything() {
        let mut h = NullHost;
        let ctx = HostCtx {
            stack: &[],
            steps: 0,
        };
        assert!(h.call_native("f", &[], &ctx).is_err());
        assert!(h.construct("C", &[], &ctx).is_err());
        assert!(h.call_method(ObjId(0), "m", &[], &ctx).is_err());
        assert_eq!(h.get_property(ObjId(0), "p").unwrap(), Value::Undefined);
        assert!(h.set_property(ObjId(0), "p", Value::Null, &ctx).is_err());
        assert!(h.get_global("document").is_none());
        assert!(!h.has_native("f"));
    }
}
