//! Abstract syntax tree for the JavaScript subset.

use std::rc::Rc;

/// A parsed program: function declarations are hoisted by the interpreter;
/// the remaining statements run top to bottom.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub body: Vec<Stmt>,
}

/// A function declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDecl {
    pub name: String,
    pub params: Vec<String>,
    pub body: Vec<Stmt>,
    pub line: u32,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var name = init;`
    VarDecl {
        name: String,
        init: Option<Expr>,
        line: u32,
    },
    /// A bare expression statement.
    Expr(Expr),
    /// `if (cond) then else alt`
    If {
        cond: Expr,
        then_branch: Vec<Stmt>,
        else_branch: Vec<Stmt>,
    },
    /// `while (cond) body`
    While {
        cond: Expr,
        body: Vec<Stmt>,
    },
    /// `for (init; cond; update) body`
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        update: Option<Expr>,
        body: Vec<Stmt>,
    },
    /// `return expr;`
    Return(Option<Expr>),
    Break,
    Continue,
    /// `function f(a, b) { ... }`
    Function(Rc<FunctionDecl>),
    /// `{ ... }`
    Block(Vec<Stmt>),
    /// `;`
    Empty,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    NotEq,
    StrictEq,
    StrictNotEq,
    Lt,
    Gt,
    Le,
    Ge,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
    Typeof,
}

/// Compound-assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    Assign,
    Add,
    Sub,
    Mul,
    Div,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Num(f64),
    Str(Rc<str>),
    Bool(bool),
    Null,
    Undefined,
    /// `[a, b, c]`
    ArrayLit(Vec<Expr>),
    /// `{ key: value, ... }`
    ObjectLit(Vec<(String, Expr)>),
    /// `object[index]`
    Index {
        object: Box<Expr>,
        index: Box<Expr>,
    },
    /// Variable reference.
    Ident {
        name: String,
        line: u32,
    },
    /// `lhs op rhs` (short-circuit ops are separate).
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// `lhs && rhs`
    And(Box<Expr>, Box<Expr>),
    /// `lhs || rhs`
    Or(Box<Expr>, Box<Expr>),
    /// `op expr`
    Unary {
        op: UnOp,
        expr: Box<Expr>,
    },
    /// `cond ? then : alt`
    Ternary {
        cond: Box<Expr>,
        then_expr: Box<Expr>,
        else_expr: Box<Expr>,
    },
    /// `name = value`, `name += value`, …
    Assign {
        op: AssignOp,
        target: AssignTarget,
        value: Box<Expr>,
    },
    /// `name++` / `name--` (postfix; evaluates to the *old* value).
    PostIncDec {
        target: AssignTarget,
        inc: bool,
    },
    /// `f(args)` — a user function or a native global.
    Call {
        callee: String,
        args: Vec<Expr>,
        line: u32,
    },
    /// `obj.method(args)`
    MethodCall {
        object: Box<Expr>,
        method: String,
        args: Vec<Expr>,
        line: u32,
    },
    /// `obj.prop`
    Member {
        object: Box<Expr>,
        prop: String,
    },
    /// `new Class(args)`
    New {
        class: String,
        args: Vec<Expr>,
        line: u32,
    },
}

/// The left-hand side of an assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum AssignTarget {
    /// A plain variable.
    Ident(String),
    /// `obj.prop` — routed to the host's `set_property` (host objects) or a
    /// dict entry (script objects).
    Member { object: Box<Expr>, prop: String },
    /// `obj[index]` — array element or dict entry.
    Index { object: Box<Expr>, index: Box<Expr> },
}
