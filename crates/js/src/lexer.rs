//! Lexer for the JavaScript subset.

use crate::error::{JsError, JsErrorKind};

/// A lexical token, tagged with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Ident(String),
    Num(f64),
    Str(String),
    Keyword(Keyword),
    Punct(Punct),
    Eof,
}

/// Reserved words we recognize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    Var,
    Function,
    If,
    Else,
    While,
    For,
    Return,
    Break,
    Continue,
    True,
    False,
    Null,
    Undefined,
    New,
    Typeof,
}

impl Keyword {
    fn from_str(s: &str) -> Option<Self> {
        Some(match s {
            "var" => Self::Var,
            "function" => Self::Function,
            "if" => Self::If,
            "else" => Self::Else,
            "while" => Self::While,
            "for" => Self::For,
            "return" => Self::Return,
            "break" => Self::Break,
            "continue" => Self::Continue,
            "true" => Self::True,
            "false" => Self::False,
            "null" => Self::Null,
            "undefined" => Self::Undefined,
            "new" => Self::New,
            "typeof" => Self::Typeof,
            _ => return None,
        })
    }
}

/// Punctuation and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Dot,
    Question,
    Colon,
    Assign,     // =
    PlusAssign, // +=
    MinusAssign,
    StarAssign,
    SlashAssign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    EqEq,    // ==
    NotEq,   // !=
    EqEqEq,  // ===
    NotEqEq, // !==
    Lt,
    Gt,
    Le,
    Ge,
    AndAnd,
    OrOr,
    Not,
    PlusPlus,
    MinusMinus,
}

/// Lexes `src` into a token vector (terminated by `Eof`).
pub fn lex(src: &str) -> Result<Vec<Token>, JsError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;

    macro_rules! push {
        ($kind:expr) => {
            tokens.push(Token { kind: $kind, line })
        };
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if b.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(JsError::at(
                            JsErrorKind::Lex,
                            "unterminated block comment",
                            line,
                        ));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'"' | b'\'' => {
                let quote = b;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(JsError::at(
                            JsErrorKind::Lex,
                            "unterminated string literal",
                            line,
                        ));
                    }
                    let c = bytes[i];
                    if c == quote {
                        i += 1;
                        break;
                    }
                    if c == b'\\' {
                        i += 1;
                        let esc = *bytes.get(i).ok_or_else(|| {
                            JsError::at(JsErrorKind::Lex, "unterminated escape", line)
                        })?;
                        match esc {
                            b'n' => {
                                s.push('\n');
                                i += 1;
                            }
                            b't' => {
                                s.push('\t');
                                i += 1;
                            }
                            b'r' => {
                                s.push('\r');
                                i += 1;
                            }
                            b'\\' | b'\'' | b'"' => {
                                s.push(esc as char);
                                i += 1;
                            }
                            b'0' => {
                                s.push('\0');
                                i += 1;
                            }
                            _ => {
                                // Unknown escape: keep the (possibly
                                // multibyte) character verbatim.
                                let len = utf8_len(esc);
                                s.push_str(&src[i..i + len]);
                                i += len;
                            }
                        }
                    } else {
                        if c == b'\n' {
                            line += 1;
                        }
                        // Copy a full UTF-8 character.
                        let len = utf8_len(c);
                        s.push_str(&src[i..i + len]);
                        i += len;
                    }
                }
                push!(TokenKind::Str(s));
            }
            _ if b.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                // Exponent part.
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &src[start..i];
                let value: f64 = text.parse().map_err(|_| {
                    JsError::at(JsErrorKind::Lex, format!("bad number literal {text}"), line)
                })?;
                push!(TokenKind::Num(value));
            }
            _ if b.is_ascii_alphabetic() || b == b'_' || b == b'$' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'$')
                {
                    i += 1;
                }
                let word = &src[start..i];
                match Keyword::from_str(word) {
                    Some(kw) => push!(TokenKind::Keyword(kw)),
                    None => push!(TokenKind::Ident(word.to_string())),
                }
            }
            _ => {
                use Punct::*;
                let two =
                    |a: u8, b2: u8| i + 1 < bytes.len() && bytes[i] == a && bytes[i + 1] == b2;
                let three = |a: u8, b2: u8, c: u8| {
                    i + 2 < bytes.len() && bytes[i] == a && bytes[i + 1] == b2 && bytes[i + 2] == c
                };
                let (punct, len) = if three(b'=', b'=', b'=') {
                    (EqEqEq, 3)
                } else if three(b'!', b'=', b'=') {
                    (NotEqEq, 3)
                } else if two(b'=', b'=') {
                    (EqEq, 2)
                } else if two(b'!', b'=') {
                    (NotEq, 2)
                } else if two(b'<', b'=') {
                    (Le, 2)
                } else if two(b'>', b'=') {
                    (Ge, 2)
                } else if two(b'&', b'&') {
                    (AndAnd, 2)
                } else if two(b'|', b'|') {
                    (OrOr, 2)
                } else if two(b'+', b'=') {
                    (PlusAssign, 2)
                } else if two(b'-', b'=') {
                    (MinusAssign, 2)
                } else if two(b'*', b'=') {
                    (StarAssign, 2)
                } else if two(b'/', b'=') {
                    (SlashAssign, 2)
                } else if two(b'+', b'+') {
                    (PlusPlus, 2)
                } else if two(b'-', b'-') {
                    (MinusMinus, 2)
                } else {
                    let p = match b {
                        b'(' => LParen,
                        b')' => RParen,
                        b'{' => LBrace,
                        b'}' => RBrace,
                        b'[' => LBracket,
                        b']' => RBracket,
                        b',' => Comma,
                        b';' => Semi,
                        b'.' => Dot,
                        b'?' => Question,
                        b':' => Colon,
                        b'=' => Assign,
                        b'+' => Plus,
                        b'-' => Minus,
                        b'*' => Star,
                        b'/' => Slash,
                        b'%' => Percent,
                        b'<' => Lt,
                        b'>' => Gt,
                        b'!' => Not,
                        other => {
                            return Err(JsError::at(
                                JsErrorKind::Lex,
                                format!("unexpected character {:?}", other as char),
                                line,
                            ))
                        }
                    };
                    (p, 1)
                };
                push!(TokenKind::Punct(punct));
                i += len;
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >> 5 == 0b110 => 2,
        b if b >> 4 == 0b1110 => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_keywords_numbers() {
        let k = kinds("var x = 42.5;");
        assert_eq!(
            k,
            vec![
                TokenKind::Keyword(Keyword::Var),
                TokenKind::Ident("x".into()),
                TokenKind::Punct(Punct::Assign),
                TokenKind::Num(42.5),
                TokenKind::Punct(Punct::Semi),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        let k = kinds(r#"'a\'b' "c\nd""#);
        assert_eq!(k[0], TokenKind::Str("a'b".into()));
        assert_eq!(k[1], TokenKind::Str("c\nd".into()));
    }

    #[test]
    fn comments_skipped() {
        let k = kinds("1 // line\n/* block\nstill */ 2");
        assert_eq!(
            k,
            vec![TokenKind::Num(1.0), TokenKind::Num(2.0), TokenKind::Eof]
        );
    }

    #[test]
    fn multi_char_operators() {
        let k = kinds("a === b !== c == d != e <= f >= g && h || i += j ++");
        let puncts: Vec<_> = k
            .iter()
            .filter_map(|t| match t {
                TokenKind::Punct(p) => Some(*p),
                _ => None,
            })
            .collect();
        assert_eq!(
            puncts,
            vec![
                Punct::EqEqEq,
                Punct::NotEqEq,
                Punct::EqEq,
                Punct::NotEq,
                Punct::Le,
                Punct::Ge,
                Punct::AndAnd,
                Punct::OrOr,
                Punct::PlusAssign,
                Punct::PlusPlus,
            ]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = lex("a\nb\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn unterminated_string_errors() {
        let err = lex("'abc").unwrap_err();
        assert_eq!(err.kind, JsErrorKind::Lex);
    }

    #[test]
    fn exponent_numbers() {
        assert_eq!(kinds("1e3")[0], TokenKind::Num(1000.0));
        assert_eq!(kinds("2.5e-2")[0], TokenKind::Num(0.025));
    }

    #[test]
    fn dollar_and_underscore_idents() {
        assert_eq!(kinds("$x _y")[0], TokenKind::Ident("$x".into()));
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(kinds("'héllo 😀'")[0], TokenKind::Str("héllo 😀".into()));
    }
}
