//! Error type shared by the lexer, parser and interpreter.

use std::fmt;

/// What went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsErrorKind {
    /// Lexical error (bad character, unterminated string…).
    Lex,
    /// Syntax error.
    Parse,
    /// Reference to an undefined variable or function.
    Reference,
    /// Operation on incompatible values.
    Type,
    /// The fuel budget was exhausted (runaway script).
    FuelExhausted,
    /// The call stack exceeded its depth limit.
    StackOverflow,
    /// An error raised by the embedding host (e.g. a failed network call).
    Host,
}

impl fmt::Display for JsErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Lex => "lex error",
            Self::Parse => "syntax error",
            Self::Reference => "reference error",
            Self::Type => "type error",
            Self::FuelExhausted => "fuel exhausted",
            Self::StackOverflow => "stack overflow",
            Self::Host => "host error",
        };
        f.write_str(s)
    }
}

/// An error produced while lexing, parsing or executing JavaScript.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsError {
    pub kind: JsErrorKind,
    pub message: String,
    /// 1-based source line where the error occurred, when known.
    pub line: Option<u32>,
}

impl JsError {
    pub fn new(kind: JsErrorKind, message: impl Into<String>) -> Self {
        Self {
            kind,
            message: message.into(),
            line: None,
        }
    }

    pub fn at(kind: JsErrorKind, message: impl Into<String>, line: u32) -> Self {
        Self {
            kind,
            message: message.into(),
            line: Some(line),
        }
    }

    pub fn reference(message: impl Into<String>) -> Self {
        Self::new(JsErrorKind::Reference, message)
    }

    pub fn type_error(message: impl Into<String>) -> Self {
        Self::new(JsErrorKind::Type, message)
    }

    pub fn host(message: impl Into<String>) -> Self {
        Self::new(JsErrorKind::Host, message)
    }
}

impl fmt::Display for JsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "{} at line {}: {}", self.kind, line, self.message),
            None => write!(f, "{}: {}", self.kind, self.message),
        }
    }
}

impl std::error::Error for JsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_line() {
        let e = JsError::at(JsErrorKind::Parse, "unexpected token", 3);
        assert_eq!(e.to_string(), "syntax error at line 3: unexpected token");
        let e = JsError::reference("x is not defined");
        assert_eq!(e.to_string(), "reference error: x is not defined");
    }
}
