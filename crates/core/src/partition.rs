//! The `URLPartitioner` (thesis §6.2.2): split the precrawled URL list into
//! fixed-size partitions, each becoming the input of one independent
//! `SimpleAjaxCrawler`. On disk the thesis wrote one directory per partition
//! with a `URLsToCrawl.txt`; here a partition is a value.

use serde::{Deserialize, Serialize};

/// One URL partition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// 1-based id, matching the thesis' numbered partition directories.
    pub id: usize,
    pub urls: Vec<String>,
}

/// Splits `urls` into partitions of `partition_size` (`PARTITION_SIZE`).
/// The final partition may be smaller. `partition_size == 0` is coerced to 1.
pub fn partition_urls(urls: &[String], partition_size: usize) -> Vec<Partition> {
    let size = partition_size.max(1);
    urls.chunks(size)
        .enumerate()
        .map(|(i, chunk)| Partition {
            id: i + 1,
            urls: chunk.to_vec(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn urls(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("http://x/watch?v={i}")).collect()
    }

    #[test]
    fn exact_division() {
        let parts = partition_urls(&urls(100), 20);
        assert_eq!(parts.len(), 5);
        assert!(parts.iter().all(|p| p.urls.len() == 20));
        assert_eq!(parts[0].id, 1);
        assert_eq!(parts[4].id, 5);
    }

    #[test]
    fn remainder_partition_smaller() {
        // The thesis' own example: 107 pages, size 20 ⇒ 6 partitions.
        let parts = partition_urls(&urls(107), 20);
        assert_eq!(parts.len(), 6);
        assert_eq!(parts[5].urls.len(), 7);
    }

    #[test]
    fn covers_all_urls_exactly_once() {
        let input = urls(53);
        let parts = partition_urls(&input, 7);
        let flattened: Vec<String> = parts.into_iter().flat_map(|p| p.urls).collect();
        assert_eq!(flattened, input);
    }

    #[test]
    fn empty_input() {
        assert!(partition_urls(&[], 10).is_empty());
    }

    #[test]
    fn zero_size_coerced() {
        let parts = partition_urls(&urls(3), 0);
        assert_eq!(parts.len(), 3);
    }

    #[test]
    fn size_larger_than_input() {
        let parts = partition_urls(&urls(3), 100);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].urls.len(), 3);
    }
}
