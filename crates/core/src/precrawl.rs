//! The Precrawling phase (thesis §6.2): build the traditional hyperlink
//! graph breadth-first from a start URL, then compute PageRank over it.
//!
//! Precrawling is deliberately *traditional* — it fetches pages without
//! executing JavaScript and only extracts `<a href>` links — so it is cheap,
//! and it is what lets the expensive AJAX crawl be partitioned into fully
//! independent process lines afterwards.

use crate::crawler::{CpuCostModel, RetryPolicy};
use crate::pagerank::pagerank_default;
use ajax_dom::parse_document;
use ajax_net::fault::FaultPlan;
use ajax_net::{LatencyModel, Micros, NetClient, Server, Url};
use ajax_obs::{AttrValue, Recorder};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// The hyperlink structure produced by precrawling: the thesis'
/// `HashMap<String, ArrayList<String>>` plus PageRank values.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LinkGraph {
    /// Discovered page URLs in BFS order (the crawl list for partitioning).
    pub urls: Vec<String>,
    /// `url -> outbound urls` (only edges between discovered pages).
    pub edges: HashMap<String, Vec<String>>,
    /// `url -> PageRank`.
    pub pagerank: HashMap<String, f64>,
    /// Virtual time the precrawl took.
    pub precrawl_micros: Micros,
}

impl LinkGraph {
    /// Number of discovered pages.
    pub fn len(&self) -> usize {
        self.urls.len()
    }

    /// True when nothing was discovered.
    pub fn is_empty(&self) -> bool {
        self.urls.is_empty()
    }
}

/// The `Precrawler` (thesis §6.2.1): BFS over hyperlinks up to a page limit.
pub struct Precrawler {
    net: NetClient,
    costs: CpuCostModel,
    /// Only follow links whose path matches this prefix (e.g. `/watch`),
    /// mirroring how the thesis restricted itself to video pages.
    pub path_filter: Option<String>,
    /// Retry policy for page GETs (a transiently-failing page would
    /// otherwise silently vanish from the crawl list).
    pub retry: RetryPolicy,
    recorder: Recorder,
}

impl Precrawler {
    /// Creates a precrawler.
    pub fn new(server: Arc<dyn Server>, latency: LatencyModel) -> Self {
        Self {
            net: NetClient::new(server, latency),
            costs: CpuCostModel::thesis_default(),
            path_filter: Some("/watch".to_string()),
            retry: RetryPolicy::default(),
            recorder: Recorder::Off,
        }
    }

    /// Attaches a span recorder (one `precrawl.page` span per visited page).
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Drains the recorded spans, leaving the recorder armed.
    pub fn take_spans(&mut self) -> Vec<ajax_obs::SpanEvent> {
        self.recorder.take()
    }

    /// Attaches a deterministic fault plan to the precrawler's client.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.net = self.net.with_fault_plan(plan);
        self
    }

    /// Returns a copy with a different retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// BFS from `start`, visiting at most `max_pages` pages
    /// (`NUM_OF_PAGES_TO_PRECRAWL`), then computes PageRank.
    pub fn run(&mut self, start: &Url, max_pages: usize) -> LinkGraph {
        let t0 = self.net.now();
        let mut graph = LinkGraph::default();
        if max_pages == 0 {
            return graph;
        }

        let mut seen: HashMap<String, usize> = HashMap::new();
        let mut queue = VecDeque::from([start.clone()]);
        seen.insert(start.to_string(), 0);
        graph.urls.push(start.to_string());

        while let Some(url) = queue.pop_front() {
            let page_start = self.net.now();
            // Retry under the policy: transport faults surface as synthetic
            // retryable statuses (598/597) through the legacy fetch.
            let mut response = self.net.fetch(&url);
            let mut attempt = 1;
            while !response.is_ok()
                && self.retry.retry_status(response.status)
                && attempt < self.retry.max_attempts
            {
                self.net
                    .charge_wait(self.retry.backoff(&url.to_string(), attempt));
                response = self.net.fetch(&url);
                attempt += 1;
            }
            if !response.is_ok() {
                graph.edges.entry(url.to_string()).or_default();
                if self.recorder.is_on() {
                    let end = self.net.now();
                    self.recorder.push(
                        "precrawl.page",
                        page_start,
                        end,
                        vec![
                            ("url", AttrValue::str(url.to_string())),
                            ("status", AttrValue::U64(response.status as u64)),
                        ],
                    );
                }
                continue;
            }
            self.net
                .charge_cpu(self.costs.parse_cost(response.body.len()));
            let doc = parse_document(&response.body);

            let mut out = Vec::new();
            for href in doc.hyperlinks() {
                let target = url.resolve(&href);
                if let Some(filter) = &self.path_filter {
                    if !target.path.starts_with(filter.as_str()) {
                        continue;
                    }
                }
                let target_str = target.to_string();
                if !seen.contains_key(&target_str) && seen.len() < max_pages {
                    seen.insert(target_str.clone(), graph.urls.len());
                    graph.urls.push(target_str.clone());
                    queue.push_back(target);
                }
                // Record the edge whenever the target is a discovered page.
                if seen.contains_key(&target_str) && !out.contains(&target_str) {
                    out.push(target_str);
                }
            }
            if self.recorder.is_on() {
                let end = self.net.now();
                self.recorder.push(
                    "precrawl.page",
                    page_start,
                    end,
                    vec![
                        ("url", AttrValue::str(url.to_string())),
                        ("links", AttrValue::U64(out.len() as u64)),
                    ],
                );
            }
            graph.edges.insert(url.to_string(), out);
        }

        // PageRank over the discovered subgraph.
        let index: HashMap<&String, usize> =
            graph.urls.iter().enumerate().map(|(i, u)| (u, i)).collect();
        let adjacency: Vec<Vec<usize>> = graph
            .urls
            .iter()
            .map(|u| {
                graph
                    .edges
                    .get(u)
                    .map(|targets| {
                        targets
                            .iter()
                            .filter_map(|t| index.get(t).copied())
                            .collect()
                    })
                    .unwrap_or_default()
            })
            .collect();
        let ranks = pagerank_default(&adjacency);
        graph.pagerank = graph
            .urls
            .iter()
            .cloned()
            .zip(ranks.iter().copied())
            .collect();
        graph.precrawl_micros = self.net.now() - t0;
        graph
    }

    /// The network client (statistics).
    pub fn net(&self) -> &NetClient {
        &self.net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajax_webgen::{VidShareServer, VidShareSpec};

    fn precrawl(n_videos: u32, max_pages: usize) -> LinkGraph {
        let server = Arc::new(VidShareServer::new(VidShareSpec::small(n_videos)));
        let mut pre = Precrawler::new(server, LatencyModel::Fixed(1_000));
        pre.run(&Url::parse("http://vidshare.example/watch?v=0"), max_pages)
    }

    #[test]
    fn discovers_up_to_limit() {
        let graph = precrawl(200, 50);
        assert_eq!(graph.len(), 50);
        assert_eq!(graph.urls[0], "http://vidshare.example/watch?v=0");
        // All URLs unique.
        let unique: std::collections::HashSet<_> = graph.urls.iter().collect();
        assert_eq!(unique.len(), 50);
    }

    #[test]
    fn small_site_fully_discovered() {
        let graph = precrawl(20, 500);
        assert!(
            graph.len() >= 19,
            "tiny site should be (almost) fully reachable, got {}",
            graph.len()
        );
    }

    #[test]
    fn pagerank_assigned_to_every_url() {
        let graph = precrawl(60, 30);
        assert_eq!(graph.pagerank.len(), graph.len());
        let sum: f64 = graph.pagerank.values().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(graph.pagerank.values().all(|r| *r > 0.0));
    }

    #[test]
    fn edges_point_to_discovered_pages_only() {
        let graph = precrawl(100, 25);
        let known: std::collections::HashSet<_> = graph.urls.iter().collect();
        for (src, targets) in &graph.edges {
            assert!(known.contains(src));
            for t in targets {
                assert!(known.contains(t), "{src} links to undiscovered {t}");
            }
        }
    }

    #[test]
    fn zero_limit() {
        let graph = precrawl(10, 0);
        assert!(graph.is_empty());
    }

    #[test]
    fn precrawl_time_accounted() {
        let graph = precrawl(50, 20);
        // 20 pages × 1 ms latency plus parse costs.
        assert!(graph.precrawl_micros >= 20_000);
    }
}
