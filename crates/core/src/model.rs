//! The AJAX application model (thesis ch. 2).
//!
//! An AJAX page is modelled as a **transition graph**: nodes are application
//! states (DOM trees, identified by a content hash), edges are transitions
//! annotated with the triggering event (source element, trigger type, action
//! and modified targets). An AJAX *web site* adds the traditional hyperlink
//! graph between pages.

use ajax_dom::EventType;
use ajax_net::Micros;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a state inside one [`AppModel`]. State 0 is always the
/// initial state (the page as loaded + `onload`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StateId(pub u32);

impl StateId {
    /// The initial state of every page.
    pub const INITIAL: StateId = StateId(0);

    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for StateId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One application state: a snapshot of the user-visible document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct State {
    pub id: StateId,
    /// FNV-64 hash of the normalized DOM — the duplicate-detection identity
    /// of §3.2.
    pub hash: u64,
    /// Extracted text content (what the indexer consumes).
    pub text: String,
    /// Full serialized DOM, kept only when the crawl config asks for it
    /// (needed by result aggregation / replay; heavy for bulk crawls).
    pub dom_html: Option<String>,
}

/// A transition: `from --event--> to`, annotated as in Table 2.1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transition {
    pub from: StateId,
    pub to: StateId,
    /// Stable description of the source element (`span#nextArrow`).
    pub source: String,
    /// The trigger (click, mouseover, …).
    pub event: EventType,
    /// The handler code — the *action* that caused the transition; replaying
    /// it from `from` reproduces `to` (result aggregation, §5.4).
    pub action: String,
    /// The modified target elements (Table 2.1's "Target(s)" column, e.g.
    /// `div#recent_comments`), computed by DOM diff between the two states.
    pub targets: Vec<String>,
}

/// One `(url, body)` pair fetched from the server during the crawl; stored so
/// that replay (result aggregation) can run fully offline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FetchRecord {
    pub url: String,
    pub body: String,
}

/// The application model of one AJAX page: the transition graph plus the
/// replay data and crawl accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppModel {
    /// The page URL (all states share it — that is the crux of the problem).
    pub url: String,
    pub states: Vec<State>,
    pub transitions: Vec<Transition>,
    /// The raw page HTML, kept when replay support is enabled.
    pub page_html: Option<String>,
    /// XHR bodies fetched during crawling, for offline replay.
    pub fetches: Vec<FetchRecord>,
    /// Virtual time the page crawl took.
    pub crawl_micros: Micros,
    /// Events whose XHR exhausted all retries: the resulting DOM state could
    /// not be materialized, so the transition graph is missing edges here
    /// (graceful degradation — the page is still indexed, just incompletely).
    pub partial_states: u32,
}

impl AppModel {
    /// Creates an empty model for `url`.
    pub fn new(url: impl Into<String>) -> Self {
        Self {
            url: url.into(),
            states: Vec::new(),
            transitions: Vec::new(),
            page_html: None,
            fetches: Vec::new(),
            crawl_micros: 0,
            partial_states: 0,
        }
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Looks a state up by id.
    pub fn state(&self, id: StateId) -> Option<&State> {
        self.states.get(id.index())
    }

    /// Finds the state with content hash `hash` (duplicate detection).
    pub fn state_by_hash(&self, hash: u64) -> Option<&State> {
        self.states.iter().find(|s| s.hash == hash)
    }

    /// Adds a state and returns its id. The caller must have checked for
    /// duplicates via [`Self::state_by_hash`] first.
    pub fn add_state(&mut self, hash: u64, text: String, dom_html: Option<String>) -> StateId {
        let id = StateId(self.states.len() as u32);
        self.states.push(State {
            id,
            hash,
            text,
            dom_html,
        });
        id
    }

    /// Adds a transition (idempotent: duplicate edges are dropped).
    pub fn add_transition(&mut self, transition: Transition) {
        if !self.transitions.iter().any(|t| {
            t.from == transition.from
                && t.to == transition.to
                && t.source == transition.source
                && t.event == transition.event
        }) {
            self.transitions.push(transition);
        }
    }

    /// Outgoing transitions of `state`.
    pub fn outgoing(&self, state: StateId) -> impl Iterator<Item = &Transition> {
        self.transitions.iter().filter(move |t| t.from == state)
    }

    /// The shortest event path from the initial state to `target` — the path
    /// result aggregation replays (§5.4, step 1).
    pub fn event_path(&self, target: StateId) -> Option<Vec<&Transition>> {
        if target == StateId::INITIAL {
            return Some(Vec::new());
        }
        if target.index() >= self.states.len() {
            return None;
        }
        // BFS over transitions.
        let mut pred: HashMap<StateId, &Transition> = HashMap::new();
        let mut queue = std::collections::VecDeque::from([StateId::INITIAL]);
        while let Some(s) = queue.pop_front() {
            for t in self.outgoing(s) {
                if t.to != StateId::INITIAL && !pred.contains_key(&t.to) {
                    pred.insert(t.to, t);
                    if t.to == target {
                        // Reconstruct.
                        let mut path = Vec::new();
                        let mut cur = target;
                        while cur != StateId::INITIAL {
                            let t = pred[&cur];
                            path.push(t);
                            cur = t.from;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(t.to);
                }
            }
        }
        None
    }

    /// Adjacency lists over states (for AJAXRank).
    pub fn state_adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.states.len()];
        for t in &self.transitions {
            adj[t.from.index()].push(t.to.index());
        }
        adj
    }

    /// Total text size across states (bytes).
    pub fn text_bytes(&self) -> usize {
        self.states.iter().map(|s| s.text.len()).sum()
    }

    /// A stable FNV-64 signature of the transition graph: state hashes plus
    /// `(from, to, source, event, action)` per transition, ignoring timing
    /// and replay payloads. Two crawls explored the same application iff
    /// their signatures agree — the cheap equality the static-prune
    /// soundness checks (bench experiment, `--verify-prune`) rely on.
    pub fn graph_signature(&self) -> u64 {
        let mut h = ajax_dom::hash::Fnv64::new();
        for s in &self.states {
            h.write_u64(s.hash);
        }
        for t in &self.transitions {
            h.write_u64(t.from.0 as u64);
            h.write_u64(t.to.0 as u64);
            h.write_str(&t.source);
            h.write_str(t.event.attr_name());
            h.write_str(&t.action);
        }
        h.finish()
    }
}

/// The model of a whole AJAX web site: the page models plus the traditional
/// hyperlink graph (Fig. 2.3).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SiteModel {
    pub pages: Vec<AppModel>,
    /// `url -> outbound urls` (hyperlinks, not AJAX transitions).
    pub hyperlinks: HashMap<String, Vec<String>>,
    /// `url -> PageRank` from the precrawl phase.
    pub pagerank: HashMap<String, f64>,
}

impl SiteModel {
    /// Total number of states over all pages.
    pub fn total_states(&self) -> usize {
        self.pages.iter().map(AppModel::state_count).sum()
    }

    /// Finds a page model by URL.
    pub fn page(&self, url: &str) -> Option<&AppModel> {
        self.pages.iter().find(|p| p.url == url)
    }

    /// Order-independent signature over all page graphs (see
    /// [`AppModel::graph_signature`]): page signatures are combined by
    /// XOR keyed on URL, so partition order does not matter.
    pub fn graph_signature(&self) -> u64 {
        self.pages
            .iter()
            .map(|p| {
                let mut h = ajax_dom::hash::Fnv64::new();
                h.write_str(&p.url);
                h.write_u64(p.graph_signature());
                h.finish()
            })
            .fold(0u64, |acc, s| acc ^ s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_with_chain() -> AppModel {
        // s0 -> s1 -> s2, plus a shortcut s0 -> s2.
        let mut m = AppModel::new("http://x/watch?v=1");
        let s0 = m.add_state(10, "zero".into(), None);
        let s1 = m.add_state(11, "one".into(), None);
        let s2 = m.add_state(12, "two".into(), None);
        assert_eq!(s0, StateId::INITIAL);
        m.add_transition(Transition {
            from: s0,
            to: s1,
            source: "span#next".into(),
            event: EventType::Click,
            action: "nextPage()".into(),
            targets: vec!["div#recent_comments".into()],
        });
        m.add_transition(Transition {
            from: s1,
            to: s2,
            source: "span#next".into(),
            event: EventType::Click,
            action: "nextPage()".into(),
            targets: vec!["div#recent_comments".into()],
        });
        m.add_transition(Transition {
            from: s0,
            to: s2,
            source: "span.pagelink".into(),
            event: EventType::Click,
            action: "gotoPage(3)".into(),
            targets: vec!["div#recent_comments".into()],
        });
        m
    }

    #[test]
    fn duplicate_detection_by_hash() {
        let m = model_with_chain();
        assert!(m.state_by_hash(11).is_some());
        assert!(m.state_by_hash(99).is_none());
    }

    #[test]
    fn duplicate_transitions_dropped() {
        let mut m = model_with_chain();
        let before = m.transitions.len();
        m.add_transition(Transition {
            from: StateId(0),
            to: StateId(1),
            source: "span#next".into(),
            event: EventType::Click,
            action: "nextPage()".into(),
            targets: Vec::new(),
        });
        assert_eq!(m.transitions.len(), before);
    }

    #[test]
    fn event_path_finds_shortest() {
        let m = model_with_chain();
        let path = m.event_path(StateId(2)).unwrap();
        assert_eq!(path.len(), 1, "shortcut s0->s2 must win over s0->s1->s2");
        assert_eq!(path[0].action, "gotoPage(3)");
        let path1 = m.event_path(StateId(1)).unwrap();
        assert_eq!(path1.len(), 1);
        assert!(m.event_path(StateId::INITIAL).unwrap().is_empty());
        assert!(m.event_path(StateId(77)).is_none());
    }

    #[test]
    fn unreachable_state_has_no_path() {
        let mut m = model_with_chain();
        let lonely = m.add_state(99, "lonely".into(), None);
        assert!(m.event_path(lonely).is_none());
    }

    #[test]
    fn adjacency() {
        let m = model_with_chain();
        let adj = m.state_adjacency();
        assert_eq!(adj[0], vec![1, 2]);
        assert_eq!(adj[1], vec![2]);
        assert!(adj[2].is_empty());
    }

    #[test]
    fn site_model_totals() {
        let mut site = SiteModel::default();
        site.pages.push(model_with_chain());
        site.pages.push(AppModel::new("http://x/watch?v=2"));
        assert_eq!(site.total_states(), 3);
        assert!(site.page("http://x/watch?v=1").is_some());
        assert!(site.page("http://x/watch?v=9").is_none());
    }

    #[test]
    fn graph_signature_ignores_timing_but_not_structure() {
        let mut a = model_with_chain();
        let mut b = model_with_chain();
        a.crawl_micros = 1;
        b.crawl_micros = 999_999;
        b.fetches.push(FetchRecord {
            url: "http://x/frag".into(),
            body: "cached".into(),
        });
        assert_eq!(a.graph_signature(), b.graph_signature());

        b.add_transition(Transition {
            from: StateId(2),
            to: StateId(0),
            source: "span#back".into(),
            event: EventType::Click,
            action: "gotoPage(1)".into(),
            targets: Vec::new(),
        });
        assert_ne!(a.graph_signature(), b.graph_signature());
    }

    #[test]
    fn site_signature_is_partition_order_independent() {
        let mut forward = SiteModel::default();
        forward.pages.push(model_with_chain());
        forward.pages.push(AppModel::new("http://x/watch?v=2"));
        let mut reversed = SiteModel::default();
        reversed.pages.push(AppModel::new("http://x/watch?v=2"));
        reversed.pages.push(model_with_chain());
        assert_eq!(forward.graph_signature(), reversed.graph_signature());
        let empty = SiteModel::default();
        assert_ne!(forward.graph_signature(), empty.graph_signature());
    }
}
