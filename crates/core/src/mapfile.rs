//! Read-only memory-mapped files for the zero-copy index path.
//!
//! [`MappedFile::open`] maps a file `PROT_READ`/`MAP_PRIVATE` and exposes it
//! as a `&[u8]`. The mapping is immutable and private, so sharing it across
//! threads is sound (`Send + Sync`); the pages are faulted in lazily by the
//! kernel, which is what makes opening a multi-gigabyte segment cheap.
//!
//! No `libc` crate is available in this workspace, so on Unix the `mmap` /
//! `munmap` symbols are declared directly (std already links the platform
//! libc). Anywhere the syscall is unavailable — other platforms, exotic
//! filesystems where `mmap` fails — [`MappedFile::open`] falls back to a
//! plain heap read, preserving behaviour at the cost of residency.

use std::fs;
use std::io;
use std::ops::Deref;
use std::path::Path;

/// A read-only view of a file: memory-mapped when possible, heap-backed
/// otherwise. Dereferences to `&[u8]`.
#[derive(Debug)]
pub struct MappedFile {
    data: Backing,
}

#[derive(Debug)]
enum Backing {
    #[cfg(unix)]
    Mmap {
        ptr: *const u8,
        len: usize,
    },
    Heap(Vec<u8>),
}

// SAFETY: the mapping is PROT_READ + MAP_PRIVATE and never mutated or
// remapped after construction; concurrent readers see a stable byte slice.
unsafe impl Send for MappedFile {}
unsafe impl Sync for MappedFile {}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

impl MappedFile {
    /// Opens `path` read-only. Empty files and mapping failures degrade to
    /// the heap backing; I/O errors surface to the caller.
    pub fn open(path: impl AsRef<Path>) -> io::Result<MappedFile> {
        let path = path.as_ref();
        #[cfg(unix)]
        {
            use std::os::fd::AsRawFd;
            let file = fs::File::open(path)?;
            let len = file.metadata()?.len();
            let len = usize::try_from(len)
                .map_err(|_| io::Error::new(io::ErrorKind::OutOfMemory, "file too large to map"))?;
            if len > 0 {
                // SAFETY: fd is valid for the duration of the call; a
                // MAP_FAILED return is checked before the pointer is used.
                let ptr = unsafe {
                    sys::mmap(
                        std::ptr::null_mut(),
                        len,
                        sys::PROT_READ,
                        sys::MAP_PRIVATE,
                        file.as_raw_fd(),
                        0,
                    )
                };
                if ptr as isize != -1 && !ptr.is_null() {
                    return Ok(MappedFile {
                        data: Backing::Mmap {
                            ptr: ptr as *const u8,
                            len,
                        },
                    });
                }
            }
            // Zero-length or mmap refused: fall through to the heap read.
        }
        Ok(MappedFile {
            data: Backing::Heap(fs::read(path)?),
        })
    }

    /// A heap-backed view over bytes already in memory (tests, fallbacks).
    pub fn from_bytes(bytes: Vec<u8>) -> MappedFile {
        MappedFile {
            data: Backing::Heap(bytes),
        }
    }

    /// True when the backing is an actual kernel mapping (pages are shared
    /// with the page cache rather than resident on the heap).
    pub fn is_mapped(&self) -> bool {
        match &self.data {
            #[cfg(unix)]
            Backing::Mmap { .. } => true,
            Backing::Heap(_) => false,
        }
    }

    pub fn len(&self) -> usize {
        match &self.data {
            #[cfg(unix)]
            Backing::Mmap { len, .. } => *len,
            Backing::Heap(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        match &self.data {
            #[cfg(unix)]
            // SAFETY: ptr/len describe a live PROT_READ mapping owned by
            // `self`; it is unmapped only in Drop.
            Backing::Mmap { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Backing::Heap(v) => v.as_slice(),
        }
    }
}

impl Deref for MappedFile {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Drop for MappedFile {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mmap { ptr, len } = self.data {
            // SAFETY: the pointer came from a successful mmap of `len` bytes
            // and is unmapped exactly once.
            unsafe {
                sys::munmap(ptr as *mut std::ffi::c_void, len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ajax_mapfile_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn maps_file_contents() {
        let path = temp("basic");
        fs::write(&path, b"hello mapped world").unwrap();
        let m = MappedFile::open(&path).unwrap();
        assert_eq!(&m[..], b"hello mapped world");
        assert_eq!(m.len(), 18);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_is_heap_backed() {
        let path = temp("empty");
        fs::write(&path, b"").unwrap();
        let m = MappedFile::open(&path).unwrap();
        assert!(m.is_empty());
        assert!(!m.is_mapped());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(MappedFile::open("/nonexistent/definitely/missing.bin").is_err());
    }

    #[test]
    fn shared_across_threads() {
        let path = temp("threads");
        fs::write(&path, vec![7u8; 4096]).unwrap();
        let m = std::sync::Arc::new(MappedFile::open(&path).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || m.iter().map(|&b| b as u64).sum::<u64>())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 7 * 4096);
        }
        fs::remove_file(&path).ok();
    }
}
