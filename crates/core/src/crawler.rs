//! The crawling algorithms (thesis ch. 3 and 4).
//!
//! Three flavours, all driven by [`CrawlConfig`]:
//!
//! * **Traditional** — JavaScript disabled, "not even the `onload` event":
//!   fetch + parse, one state per page (the thesis' baseline, §7.1.2).
//! * **Basic AJAX** (Alg. 3.1.1) — breadth-first event invocation with
//!   rollback and duplicate detection by content hash, every AJAX call going
//!   to the network.
//! * **Heuristic AJAX** (Alg. 4.2.1) — same, plus the hot-node cache
//!   intercepting repeated `(function, args)` server calls.

use crate::browser::{Browser, CrawlEnv};
use crate::checkpoint::{Checkpointer, FailureRecord, PageRecord};
use crate::hotnode::HotNodeCache;
use crate::model::{AppModel, StateId, Transition};
use crate::recrawl::EventHistory;
use ajax_dom::events::collect_event_bindings;
use ajax_dom::{parse_document, EventType};
use ajax_net::fault::FaultPlan;
use ajax_net::sched::Task;
use ajax_net::{LatencyModel, Micros, NetClient, Response, Server, Url};
use ajax_obs::{AttrValue, Recorder};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Virtual CPU cost model. The defaults are calibrated so the VidShare
/// workload reproduces the thesis' overhead *shape*: AJAX ≈ an order of
/// magnitude per page over traditional crawling but only ~2× per state
/// (Table 7.2), with model maintenance — not JavaScript — dominating the
/// non-network cost (§7.2.3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuCostModel {
    /// Nanoseconds per parsed HTML byte.
    pub parse_nanos_per_byte: u64,
    /// Nanoseconds per interpreter step.
    pub js_nanos_per_step: u64,
    /// Nanoseconds per hashed byte (duplicate detection).
    pub hash_nanos_per_byte: u64,
    /// Microseconds per rollback (snapshot restore before each event).
    pub rollback_micros: u64,
    /// Microseconds of model maintenance per new state.
    pub state_micros: u64,
    /// Microseconds per recorded transition.
    pub transition_micros: u64,
}

impl Default for CpuCostModel {
    fn default() -> Self {
        Self::thesis_default()
    }
}

impl CpuCostModel {
    /// The calibrated default (see module docs).
    pub fn thesis_default() -> Self {
        Self {
            parse_nanos_per_byte: 150,
            js_nanos_per_step: 2_000,
            hash_nanos_per_byte: 600,
            rollback_micros: 10_000,
            state_micros: 4_000,
            transition_micros: 1_000,
        }
    }

    /// A zero-cost model (unit tests that only care about structure).
    pub fn free() -> Self {
        Self {
            parse_nanos_per_byte: 0,
            js_nanos_per_step: 0,
            hash_nanos_per_byte: 0,
            rollback_micros: 0,
            state_micros: 0,
            transition_micros: 0,
        }
    }

    /// Cost of parsing `bytes` of HTML.
    pub fn parse_cost(&self, bytes: usize) -> Micros {
        (bytes as u64 * self.parse_nanos_per_byte) / 1_000
    }

    /// Cost of `steps` interpreter steps.
    pub fn js_cost(&self, steps: u64) -> Micros {
        (steps * self.js_nanos_per_step) / 1_000
    }

    /// Cost of hashing `bytes`.
    pub fn hash_cost(&self, bytes: usize) -> Micros {
        (bytes as u64 * self.hash_nanos_per_byte) / 1_000
    }
}

/// Per-request resilience knobs, all in *virtual* microseconds so degraded
/// crawls stay deterministic. Applied to page fetches and in-event XHR
/// fetches alike.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts per request, counting the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff_micros: Micros,
    /// Multiplier applied per further retry (exponential backoff).
    pub backoff_factor: f64,
    /// Hard cap on a single backoff sleep.
    pub max_backoff_micros: Micros,
    /// Jitter fraction in `[0, 1]`: each backoff is scaled by a
    /// deterministic factor in `[1 - jitter/2, 1 + jitter/2]` derived from
    /// the URL and attempt number (no shared RNG state — reproducible under
    /// any thread schedule).
    pub jitter: f64,
    /// Per-request virtual time budget across all attempts (0 = unlimited).
    /// Once exceeded, no further retry is attempted.
    pub budget_micros: Micros,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff_micros: 100_000,
            backoff_factor: 2.0,
            max_backoff_micros: 5_000_000,
            jitter: 0.5,
            budget_micros: 0,
        }
    }
}

impl RetryPolicy {
    /// No retries at all — the pre-resilience behavior.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// Returns a copy with a different attempt cap.
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Whether `status` is worth retrying: server-side errors (5xx, incl.
    /// the synthetic 598 timeout / 597 drop statuses), request timeout (408)
    /// and throttling (429). Client errors like 404 are permanent.
    pub fn retry_status(&self, status: u16) -> bool {
        status >= 500 || status == 408 || status == 429
    }

    /// The virtual backoff before retry number `attempt` (1-based: the wait
    /// after the first failed attempt is `backoff(url, 1)`). Exponential
    /// with a deterministic per-(url, attempt) jitter.
    pub fn backoff(&self, url: &str, attempt: u32) -> Micros {
        if self.base_backoff_micros == 0 {
            return 0;
        }
        let exp = self
            .backoff_factor
            .max(1.0)
            .powi(attempt.saturating_sub(1) as i32);
        let nominal = (self.base_backoff_micros as f64 * exp)
            .min(self.max_backoff_micros.max(self.base_backoff_micros) as f64);
        let jitter = self.jitter.clamp(0.0, 1.0);
        let roll = {
            let h = ajax_dom::fnv64_str(&format!("backoff|{url}|{attempt}"));
            (h >> 11) as f64 / (1u64 << 53) as f64
        };
        let factor = 1.0 + jitter * (roll - 0.5);
        (nominal * factor).round() as Micros
    }
}

/// Crawl configuration — the `AJAXConfig` of thesis ch. 8.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrawlConfig {
    /// `TRADITIONAL_CRAWLING`: when true, JavaScript is disabled entirely.
    pub traditional: bool,
    /// `USE_DEBUGGER`: the hot-node caching policy (ch. 4).
    pub hot_node_policy: bool,
    /// Maximum states per page, counting the initial one
    /// (`SACR_NUM_OF_ADDITIONAL_STATES + 1`).
    pub max_states: usize,
    /// Hard cap on events fired per page (guards infinite event invocation,
    /// §3.2).
    pub max_events_per_page: usize,
    /// Which user events to trigger (§3.2: "focus on the most important").
    pub event_types: Vec<EventType>,
    /// Interpreter fuel per page (guards infinite loops, §3.2).
    pub js_fuel: u64,
    /// Keep serialized DOMs + page HTML for state reconstruction (§5.4).
    pub store_dom: bool,
    /// Handlers containing any of these (case-insensitive) substrings are
    /// never fired — the "no update events" guard of §4.3 (e.g. a crawler
    /// must not click Delete buttons in a mail client).
    pub avoid_actions: Vec<String>,
    /// Focused crawling (§7.2.2, ch. 10): when non-empty, only states whose
    /// text contains at least one of these keywords (case-insensitive) are
    /// *expanded* (their events fired). An off-topic page stops after its
    /// initial state — indexed like a traditional page — saving its whole
    /// AJAX budget for relevant content.
    pub focus_keywords: Vec<String>,
    /// Virtual CPU cost model.
    pub costs: CpuCostModel,
    /// Retry policy for page GETs and in-event XHR fetches.
    pub retry: RetryPolicy,
    /// Static crawl planner (docs/static-analysis.md): effect-analyze the
    /// page once and skip firing events whose handlers are statically
    /// proven pure, counting them in [`PageStats::pruned_events`].
    pub static_prune: bool,
    /// Soundness cross-check for the planner: fire statically-pruned
    /// events anyway; a state change counts as a
    /// [`PageStats::prune_mismatches`] instead of a skip.
    pub verify_prune: bool,
    /// Handler-equivalence + commutativity pruning (docs/static-analysis.md):
    /// fire one representative per equivalence class per state, letting the
    /// other members inherit a *barren* verdict, and carry barren verdicts
    /// into successor states created by provably commuting events. This is
    /// a heuristic (summaries abstract away written values), so it defaults
    /// to off; `verify_equiv` cross-checks it at full firing cost.
    pub equiv_prune: bool,
    /// Soundness cross-check for equivalence/commutativity pruning: fire
    /// claimed-barren events anyway; a state change counts as a
    /// [`PageStats::equiv_mismatches`] instead of a skip.
    pub verify_equiv: bool,
    /// Crawl checkpoint cadence (docs/robustness.md): when a
    /// [`Checkpointer`](crate::checkpoint::Checkpointer) is attached, a
    /// durable snapshot is committed after every this-many newly crawled
    /// pages. Ignored when no checkpointer is attached.
    pub checkpoint_every: usize,
}

impl CrawlConfig {
    /// The full AJAX crawler with the hot-node policy (Alg. 4.2.1) — the
    /// configuration the thesis used for YouTube10000.
    pub fn ajax() -> Self {
        Self {
            traditional: false,
            hot_node_policy: true,
            max_states: 11,
            max_events_per_page: 400,
            event_types: EventType::user_events().to_vec(),
            js_fuel: 2_000_000,
            store_dom: false,
            avoid_actions: ["delete", "remove", "destroy", "logout"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            focus_keywords: Vec::new(),
            costs: CpuCostModel::thesis_default(),
            retry: RetryPolicy::default(),
            static_prune: true,
            verify_prune: false,
            equiv_prune: false,
            verify_equiv: false,
            checkpoint_every: 64,
        }
    }

    /// The basic AJAX crawler without caching (Alg. 3.1.1) — the baseline of
    /// the caching experiments (Figs. 7.5–7.7).
    pub fn ajax_no_cache() -> Self {
        Self {
            hot_node_policy: false,
            ..Self::ajax()
        }
    }

    /// Traditional crawling: JS disabled, first state only.
    pub fn traditional() -> Self {
        Self {
            traditional: true,
            ..Self::ajax()
        }
    }

    /// Returns a copy with a different additional-state cap.
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states.max(1);
        self
    }

    /// Returns a copy that stores DOM snapshots for replay.
    pub fn storing_dom(mut self) -> Self {
        self.store_dom = true;
        self
    }

    /// Returns a focused-crawling copy (§7.2.2): only states mentioning one
    /// of `keywords` are expanded.
    pub fn focused_on<I: IntoIterator<Item = S>, S: Into<String>>(mut self, keywords: I) -> Self {
        self.focus_keywords = keywords.into_iter().map(Into::into).collect();
        self
    }

    /// Returns a copy with a different retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Returns a copy with the static crawl planner disabled (every event
    /// fires, as in the plain Alg. 3.1.1 loop).
    pub fn without_static_prune(mut self) -> Self {
        self.static_prune = false;
        self
    }

    /// Returns a copy in prune-verify mode: statically-pruned events fire
    /// anyway and any state change is counted as a soundness mismatch.
    pub fn verifying_prune(mut self) -> Self {
        self.static_prune = true;
        self.verify_prune = true;
        self
    }

    /// Returns a copy with handler-equivalence + commutativity pruning
    /// enabled (requires the static planner, so it implies `static_prune`).
    pub fn with_equiv_prune(mut self) -> Self {
        self.static_prune = true;
        self.equiv_prune = true;
        self
    }

    /// Returns a copy in equivalence-verify mode: claimed-barren events
    /// fire anyway and any state change is counted as an
    /// [`PageStats::equiv_mismatches`].
    pub fn verifying_equiv(mut self) -> Self {
        self = self.with_equiv_prune();
        self.verify_equiv = true;
        self
    }

    /// Returns a copy with a different checkpoint cadence (min 1 page).
    pub fn with_checkpoint_every(mut self, every: usize) -> Self {
        self.checkpoint_every = every.max(1);
        self
    }
}

/// Per-page crawl accounting (raw material of the ch. 7 experiments).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageStats {
    /// Events fired (Alg. 3.1.1's loop iterations).
    pub events_fired: u64,
    /// Events whose handler attempted at least one AJAX call — the thesis'
    /// "events leading to network communication" before caching.
    pub events_with_ajax: u64,
    /// AJAX calls that reached the network (excluding the initial page GET).
    pub ajax_network_calls: u64,
    /// AJAX calls served by the hot-node cache.
    pub cache_hits: u64,
    /// Distinct hot nodes (server-fetching functions) identified on the page.
    pub hot_nodes: u64,
    /// Names of the functions behind `hot_nodes`; merged by set union so
    /// cross-page / cross-partition aggregates count each distinct function
    /// once (see [`HotNodeStats::merge`](crate::hotnode::HotNodeStats)).
    pub hot_functions: std::collections::BTreeSet<String>,
    /// Events skipped (update-event guard or barren-event history).
    pub events_skipped: u64,
    /// Events whose handler was statically proven pure by the crawl
    /// planner: skipped without firing, or — in verify mode — fired and
    /// cross-checked (docs/static-analysis.md).
    pub pruned_events: u64,
    /// Verify-prune soundness failures: a statically "pure" handler
    /// changed the state when fired. Anything non-zero is an analysis bug.
    pub prune_mismatches: u64,
    /// Events skipped because an equivalence-class sibling was observed
    /// barren in the same state (or — in verify mode — fired and
    /// cross-checked anyway).
    pub equiv_pruned_events: u64,
    /// Events skipped because their barren verdict was carried into this
    /// state from the parent state across a provably commuting event.
    pub commute_pruned_events: u64,
    /// Verify-equiv failures: an event claimed barren by equivalence or
    /// commutativity changed the state when fired. Unlike
    /// `prune_mismatches`, a non-zero count here is an *expected* outcome
    /// on pages where the heuristic overreaches — it is why `equiv_prune`
    /// defaults to off.
    pub equiv_mismatches: u64,
    /// `<script>` blocks the static analysis failed to parse (best-effort;
    /// zero when the planner is disabled).
    pub script_errors: u64,
    /// States left unexpanded by the focused-crawling filter.
    pub states_not_expanded: u64,
    /// Events that produced an already-known state (duplicates detected).
    pub duplicates: u64,
    /// JS errors swallowed during crawling.
    pub js_errors: u64,
    /// States discovered (incl. initial).
    pub states: u64,
    /// Transitions recorded.
    pub transitions: u64,
    /// In-event (and load-time) XHR fetches that completed with a non-2xx
    /// status or exhausted their retries.
    pub failed_xhr: u64,
    /// Events abandoned because an XHR exhausted every retry — the resulting
    /// DOM state was not materialized (see `AppModel::partial_states`).
    pub partial_states: u64,
    /// Fetch attempts beyond the first (page GETs and XHRs).
    pub fetch_retries: u64,
    /// Total virtual crawl time for the page.
    pub crawl_micros: Micros,
    /// Portion spent on the network.
    pub network_micros: Micros,
    /// Portion spent sleeping between retries (backoff).
    pub backoff_micros: Micros,
    /// Portion spent on CPU (parse, JS, hashing, model maintenance).
    pub cpu_micros: Micros,
}

impl PageStats {
    /// Merges another page's stats into an aggregate.
    pub fn merge(&mut self, other: &PageStats) {
        self.events_fired += other.events_fired;
        self.events_with_ajax += other.events_with_ajax;
        self.ajax_network_calls += other.ajax_network_calls;
        self.cache_hits += other.cache_hits;
        // Union the hot-function names: `max` undercounted whenever two
        // pages/partitions discovered different hot nodes, and a plain sum
        // double-counts functions shared across pages of the same app.
        self.hot_functions
            .extend(other.hot_functions.iter().cloned());
        self.hot_nodes = if self.hot_functions.is_empty() {
            self.hot_nodes + other.hot_nodes
        } else {
            self.hot_functions.len() as u64
        };
        self.events_skipped += other.events_skipped;
        self.pruned_events += other.pruned_events;
        self.prune_mismatches += other.prune_mismatches;
        self.equiv_pruned_events += other.equiv_pruned_events;
        self.commute_pruned_events += other.commute_pruned_events;
        self.equiv_mismatches += other.equiv_mismatches;
        self.script_errors += other.script_errors;
        self.states_not_expanded += other.states_not_expanded;
        self.duplicates += other.duplicates;
        self.js_errors += other.js_errors;
        self.states += other.states;
        self.transitions += other.transitions;
        self.failed_xhr += other.failed_xhr;
        self.partial_states += other.partial_states;
        self.fetch_retries += other.fetch_retries;
        self.crawl_micros += other.crawl_micros;
        self.network_micros += other.network_micros;
        self.backoff_micros += other.backoff_micros;
        self.cpu_micros += other.cpu_micros;
    }
}

/// The result of crawling one page.
#[derive(Debug, Clone)]
pub struct PageCrawl {
    pub model: AppModel,
    pub stats: PageStats,
    /// The CPU/network segment trace, consumed by the parallel scheduler.
    pub trace: Task,
}

/// The terminal condition of the last failed attempt of a retried fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LastError {
    /// A retryable HTTP status (5xx / 408 / 429).
    Http(u16),
    /// The request timed out.
    Timeout,
    /// The connection dropped mid-transfer.
    Dropped,
}

/// Why a retried fetch ultimately failed — the low-level counterpart of
/// [`CrawlError`], used by the in-event XHR path (which degrades instead of
/// aborting the page).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchFailure {
    /// A non-retryable status (e.g. 404): the response is handed back so XHR
    /// callers can deliver it to the script, browser-style.
    Http { response: Response, attempts: u32 },
    /// Every attempt failed with a retryable condition.
    Exhausted {
        url: String,
        attempts: u32,
        last: LastError,
    },
}

/// Crawl failures. JS errors are *not* failures (they are recorded in the
/// stats and the crawl continues); only transport-level problems on the
/// page's own GET are. The taxonomy drives the transient/permanent
/// classification of the parallel crawler's re-enqueue + quarantine logic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrawlError {
    /// Non-retryable, non-2xx response for the page itself (e.g. 404) —
    /// permanent: retrying cannot help.
    Http {
        url: String,
        status: u16,
        attempts: u32,
    },
    /// Every attempt timed out — transient: the host may come back.
    Timeout { url: String, attempts: u32 },
    /// Every attempt's connection dropped mid-transfer — transient.
    Truncated { url: String, attempts: u32 },
    /// Every attempt drew a retryable HTTP error (5xx / 408 / 429) —
    /// transient (the server may recover), but quarantined after enough
    /// page-level re-crawls.
    Exhausted {
        url: String,
        status: u16,
        attempts: u32,
    },
}

impl CrawlError {
    /// Builds the page-level error from a failed (retried) page GET.
    pub fn from_fetch(url: &Url, failure: FetchFailure) -> Self {
        match failure {
            FetchFailure::Http { response, attempts } => CrawlError::Http {
                url: url.to_string(),
                status: response.status,
                attempts,
            },
            FetchFailure::Exhausted {
                url,
                attempts,
                last,
            } => match last {
                LastError::Timeout => CrawlError::Timeout { url, attempts },
                LastError::Dropped => CrawlError::Truncated { url, attempts },
                LastError::Http(status) => CrawlError::Exhausted {
                    url,
                    status,
                    attempts,
                },
            },
        }
    }

    /// The URL that failed.
    pub fn url(&self) -> &str {
        match self {
            CrawlError::Http { url, .. }
            | CrawlError::Timeout { url, .. }
            | CrawlError::Truncated { url, .. }
            | CrawlError::Exhausted { url, .. } => url,
        }
    }

    /// Fetch attempts burned before giving up.
    pub fn attempts(&self) -> u32 {
        match self {
            CrawlError::Http { attempts, .. }
            | CrawlError::Timeout { attempts, .. }
            | CrawlError::Truncated { attempts, .. }
            | CrawlError::Exhausted { attempts, .. } => *attempts,
        }
    }

    /// Transient errors are worth re-enqueuing at the end of the partition;
    /// permanent ones (client errors) are not.
    pub fn is_transient(&self) -> bool {
        !matches!(self, CrawlError::Http { .. })
    }
}

// Hand-written serde impls (the vendored derive handles unit-variant enums
// only): a tagged object `{"kind": ..., "url": ..., "status"?, "attempts"}`
// so checkpoint files can carry the failure taxonomy across a crash.
impl Serialize for CrawlError {
    fn serialize(&self) -> serde::Value {
        let mut map = serde::Map::new();
        let (kind, url, status, attempts) = match self {
            CrawlError::Http {
                url,
                status,
                attempts,
            } => ("http", url, Some(*status), *attempts),
            CrawlError::Timeout { url, attempts } => ("timeout", url, None, *attempts),
            CrawlError::Truncated { url, attempts } => ("truncated", url, None, *attempts),
            CrawlError::Exhausted {
                url,
                status,
                attempts,
            } => ("exhausted", url, Some(*status), *attempts),
        };
        map.insert("kind".to_string(), serde::Value::Str(kind.to_string()));
        map.insert("url".to_string(), serde::Value::Str(url.clone()));
        if let Some(status) = status {
            map.insert("status".to_string(), serde::Value::U64(status as u64));
        }
        map.insert("attempts".to_string(), serde::Value::U64(attempts as u64));
        serde::Value::Object(map)
    }
}

impl Deserialize for CrawlError {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::DeError> {
        let bad = |what: &str| serde::DeError::new(format!("CrawlError: {what}"));
        let obj = value.as_object().ok_or_else(|| bad("expected object"))?;
        let field = |name: &str| obj.get(name).ok_or_else(|| bad(&format!("missing {name}")));
        let kind = field("kind")?.as_str().ok_or_else(|| bad("kind"))?;
        let url = field("url")?
            .as_str()
            .ok_or_else(|| bad("url"))?
            .to_string();
        let attempts: u32 = match field("attempts")? {
            serde::Value::U64(v) => *v as u32,
            _ => return Err(bad("attempts")),
        };
        let status = || -> Result<u16, serde::DeError> {
            match field("status")? {
                serde::Value::U64(v) => Ok(*v as u16),
                _ => Err(bad("status")),
            }
        };
        match kind {
            "http" => Ok(CrawlError::Http {
                url,
                status: status()?,
                attempts,
            }),
            "timeout" => Ok(CrawlError::Timeout { url, attempts }),
            "truncated" => Ok(CrawlError::Truncated { url, attempts }),
            "exhausted" => Ok(CrawlError::Exhausted {
                url,
                status: status()?,
                attempts,
            }),
            other => Err(bad(&format!("unknown kind {other:?}"))),
        }
    }
}

impl std::fmt::Display for CrawlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrawlError::Http { url, status, .. } => write!(f, "HTTP {status} fetching {url}"),
            CrawlError::Timeout { url, attempts } => {
                write!(f, "timeout fetching {url} ({attempts} attempts)")
            }
            CrawlError::Truncated { url, attempts } => {
                write!(f, "connection dropped fetching {url} ({attempts} attempts)")
            }
            CrawlError::Exhausted {
                url,
                status,
                attempts,
            } => write!(
                f,
                "retries exhausted fetching {url} (last HTTP {status}, {attempts} attempts)"
            ),
        }
    }
}

impl std::error::Error for CrawlError {}

/// The `SimpleAjaxCrawler`: crawls pages one at a time over its own network
/// client.
pub struct Crawler {
    net: NetClient,
    config: CrawlConfig,
    recorder: Recorder,
}

impl Crawler {
    /// Creates a crawler against `server` with the given latency model.
    pub fn new(server: Arc<dyn Server>, latency: LatencyModel, config: CrawlConfig) -> Self {
        Self {
            net: NetClient::new(server, latency),
            config,
            recorder: Recorder::Off,
        }
    }

    /// Attaches a deterministic fault plan to the crawler's network client.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.net = self.net.with_fault_plan(plan);
        self
    }

    /// Attaches a span recorder; pass [`Recorder::enabled()`] to trace the
    /// crawl on the virtual clock (`Recorder::Off` is the zero-cost default).
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Drains the spans recorded so far (empty when tracing is disabled).
    pub fn take_spans(&mut self) -> Vec<ajax_obs::SpanEvent> {
        self.recorder.take()
    }

    /// The crawler's network client (for reading aggregate statistics).
    pub fn net(&self) -> &NetClient {
        &self.net
    }

    /// The active configuration.
    pub fn config(&self) -> &CrawlConfig {
        &self.config
    }

    /// Crawls one page, building its application model (Alg. 3.1.1 /
    /// Alg. 4.2.1 depending on the configuration).
    pub fn crawl_page(&mut self, url: &Url) -> Result<PageCrawl, CrawlError> {
        self.crawl_page_with_history(url, None)
            .map(|(crawl, _)| crawl)
    }

    /// Crawls `urls` serially with durable-checkpoint support: pages found
    /// in `restored` (a previous process's checkpoint, see
    /// [`crate::checkpoint::ResumeState`]) are emitted without re-crawling,
    /// and each newly completed page is recorded into `checkpointer`, which
    /// commits an atomic snapshot every [`CrawlConfig::checkpoint_every`]
    /// pages. Failed URLs are returned (and recorded) but never abort the
    /// sweep — the serial counterpart of `MpCrawler`'s resumable partition
    /// crawl.
    pub fn crawl_pages(
        &mut self,
        urls: &[String],
        checkpointer: Option<&Checkpointer>,
        restored: &HashMap<String, PageRecord>,
    ) -> (Vec<AppModel>, PageStats, Vec<CrawlError>) {
        let mut models = Vec::with_capacity(urls.len());
        let mut stats = PageStats::default();
        let mut errors = Vec::new();
        for url in urls {
            if let Some(record) = restored.get(url) {
                stats.merge(&record.stats);
                models.push(record.model.clone());
                continue;
            }
            match self.crawl_page_with_history(&Url::parse(url), None) {
                Ok((page, history)) => {
                    stats.merge(&page.stats);
                    if let Some(checkpointer) = checkpointer {
                        checkpointer.record_page(PageRecord {
                            url: url.clone(),
                            model: page.model.clone(),
                            stats: page.stats.clone(),
                            attempts: 1,
                            history,
                        });
                    }
                    models.push(page.model);
                }
                Err(e) => {
                    if let Some(checkpointer) = checkpointer {
                        checkpointer.record_failure(FailureRecord {
                            url: url.clone(),
                            error: e.clone(),
                            attempts: 1,
                            quarantined: false,
                        });
                    }
                    errors.push(e);
                }
            }
        }
        (models, stats, errors)
    }

    /// Like [`Self::crawl_page`], additionally consuming the previous
    /// session's [`EventHistory`] (events known barren are skipped — the
    /// repetitive-crawling optimization of thesis ch. 10) and producing the
    /// updated history for the next session.
    pub fn crawl_page_with_history(
        &mut self,
        url: &Url,
        history: Option<&EventHistory>,
    ) -> Result<(PageCrawl, EventHistory), CrawlError> {
        let start_time = self.net.now();
        let start_net = self.net.stats().network_micros;
        let start_wait = self.net.stats().wait_micros;
        let mut stats = PageStats::default();
        let mut trace_segments = Vec::new();
        let mut cache = HotNodeCache::new();
        let mut new_history = EventHistory::default();

        let mut model = AppModel::new(url.to_string());

        {
            let mut env = CrawlEnv::new(
                &mut self.net,
                &mut cache,
                self.config.hot_node_policy,
                &self.config.costs,
                self.config.retry,
                &mut trace_segments,
                &mut self.recorder,
            );

            let response = match env.fetch_with_retry(url) {
                Ok((response, _attempts)) => response,
                Err(failure) => return Err(CrawlError::from_fetch(url, failure)),
            };
            if self.config.store_dom {
                model.page_html = Some(response.body.clone());
            }

            if self.config.traditional {
                Self::crawl_traditional(&self.config, &response.body, &mut model, &mut env);
            } else {
                Self::crawl_ajax(
                    &self.config,
                    url,
                    &response.body,
                    &mut model,
                    &mut stats,
                    &mut env,
                    history,
                    &mut new_history,
                )?;
            }
            env.flush_trace();
            stats.fetch_retries = env.fetch_retries;
        }

        let hot_stats = cache.stats();
        stats.ajax_network_calls = hot_stats.network_calls;
        stats.cache_hits = hot_stats.cache_hits;
        stats.hot_nodes = hot_stats.hot_nodes;
        stats.hot_functions = hot_stats.hot_functions.clone();
        stats.states = model.state_count() as u64;
        stats.transitions = model.transitions.len() as u64;
        stats.crawl_micros = self.net.now() - start_time;
        stats.network_micros = self.net.stats().network_micros - start_net;
        stats.backoff_micros = self.net.stats().wait_micros - start_wait;
        stats.cpu_micros = stats.crawl_micros - stats.network_micros - stats.backoff_micros;
        model.partial_states = stats.partial_states as u32;
        model.crawl_micros = stats.crawl_micros;
        model.fetches = cache
            .fetch_records()
            .into_iter()
            .map(|(url, body)| crate::model::FetchRecord { url, body })
            .collect();

        if self.recorder.is_on() {
            self.recorder.push(
                "crawl.page",
                start_time,
                self.net.now(),
                vec![
                    ("url", AttrValue::str(url.to_string())),
                    ("states", AttrValue::U64(stats.states)),
                    ("events", AttrValue::U64(stats.events_fired)),
                    ("cache_hits", AttrValue::U64(stats.cache_hits)),
                ],
            );
        }

        Ok((
            PageCrawl {
                model,
                stats,
                trace: Task::new(trace_segments),
            },
            new_history,
        ))
    }

    /// Traditional crawling: parse only; "Javascript is disabled, i.e. no
    /// events are triggered, not even the onload event of the body tag"
    /// (thesis ch. 8, `TRADITIONAL_CRAWLING`).
    fn crawl_traditional(
        config: &CrawlConfig,
        body: &str,
        model: &mut AppModel,
        env: &mut CrawlEnv<'_>,
    ) {
        env.charge_cpu(config.costs.parse_cost(body.len()));
        let doc = parse_document(body);
        let normalized = doc.normalized();
        env.charge_cpu(config.costs.hash_cost(normalized.len()));
        let hash = ajax_dom::fnv64_str(&normalized);
        let text = doc.document_text();
        env.charge_cpu(config.costs.state_micros);
        let dom_html = config.store_dom.then(|| doc.to_html());
        model.add_state(hash, text, dom_html);
    }

    /// Breadth-first AJAX crawling with rollback and duplicate elimination.
    #[allow(clippy::too_many_arguments)]
    fn crawl_ajax(
        config: &CrawlConfig,
        url: &Url,
        body: &str,
        model: &mut AppModel,
        stats: &mut PageStats,
        env: &mut CrawlEnv<'_>,
        history: Option<&EventHistory>,
        new_history: &mut EventHistory,
    ) -> Result<(), CrawlError> {
        let load_start = env.net.now();
        let (mut browser, load_errors, load_outcome) =
            Browser::load_with_outcome(url.clone(), body, config.js_fuel, env);
        stats.js_errors += load_errors.len() as u64;
        stats.failed_xhr += load_outcome.failed_xhr as u64;
        if load_outcome.exhausted_xhr > 0 {
            // A load-time XHR exhausted its retries: the page starts in a
            // partial state. It is still materialized (there is nothing to
            // roll back to), but flagged.
            stats.partial_states += 1;
        }

        // Initial state (after scripts + onload).
        let initial_hash = browser.state_hash(env);
        let initial_text = browser.doc().document_text();
        env.charge_cpu(config.costs.state_micros);
        let dom_html = config.store_dom.then(|| browser.doc().to_html());
        model.add_state(initial_hash, initial_text, dom_html);
        env.rec.push0("crawl.load", load_start, env.net.now());

        // Static crawl planner: analyze once, then skip events whose
        // handlers are proven pure (or fire-and-check in verify mode).
        let mut planner = config
            .static_prune
            .then(|| StaticPlanner::new(body, config, env));
        if let Some(p) = &planner {
            stats.script_errors = p.analysis.script_errors as u64;
        }

        let mut snapshots = vec![browser.snapshot()];
        let mut queue = VecDeque::from([StateId::INITIAL]);

        // Equivalence/commutativity pruning bookkeeping (both Vecs run
        // parallel to `snapshots`): the handler codes known (or claimed)
        // barren at each state, and the (parent state, action) edge that
        // created each state — used to inherit barren verdicts across
        // provably commuting events.
        let equiv = config.equiv_prune && planner.is_some();
        let mut state_barren: Vec<std::collections::BTreeSet<String>> = vec![Default::default()];
        let mut parent_action: Vec<Option<(usize, String)>> = vec![None];

        'bfs: while let Some(state_id) = queue.pop_front() {
            // Focused crawling: expand only relevant states. An off-topic
            // *page* (initial state) gets no AJAX crawling at all — its
            // single state is still indexed, like traditional crawling.
            if !config.focus_keywords.is_empty() {
                let text = &model.states[state_id.index()].text;
                if !config
                    .focus_keywords
                    .iter()
                    .any(|k| contains_ignore_case(text, k))
                {
                    stats.states_not_expanded += 1;
                    continue;
                }
            }
            // Restore the state's snapshot to enumerate its events.
            let rb_start = env.net.now();
            browser.restore(&snapshots[state_id.index()]);
            env.charge_cpu(config.costs.rollback_micros);
            env.rec.push0("crawl.rollback", rb_start, env.net.now());
            let bindings = collect_event_bindings(browser.doc(), &config.event_types);

            // Commutativity: a handler barren at the parent state stays
            // barren here when the event that created this state provably
            // commutes with it (disjoint write/read+write sets — firing
            // order is irrelevant, so its outcome is unchanged). BFS
            // guarantees the parent finished expanding before any child
            // pops, so the parent's barren set is complete.
            if equiv {
                if let Some((parent, action)) = parent_action[state_id.index()].clone() {
                    let p = planner.as_mut().expect("equiv implies planner");
                    let inherited: Vec<String> = state_barren[parent]
                        .iter()
                        .filter(|code| p.commutes(&action, code))
                        .cloned()
                        .collect();
                    state_barren[state_id.index()].extend(inherited);
                }
            }
            // Per-state equivalence-class outcomes: class id → "was the
            // first fired member barren?". Later members of a barren class
            // inherit the verdict instead of firing.
            let mut class_outcome: HashMap<u32, bool> = HashMap::new();

            for binding in bindings {
                if stats.events_fired >= config.max_events_per_page as u64 {
                    break 'bfs;
                }
                // The "no update events" guard (§4.3).
                if config
                    .avoid_actions
                    .iter()
                    .any(|pattern| contains_ignore_case(&binding.code, pattern))
                {
                    stats.events_skipped += 1;
                    continue;
                }
                // Repetitive crawling (ch. 10): skip events known barren.
                if let Some(history) = history {
                    if history.is_barren(&binding.source, binding.event_type, &binding.code) {
                        stats.events_skipped += 1;
                        continue;
                    }
                }
                // Static pruning: a handler proven stateless cannot create
                // a transition, so firing it is pure waste. In verify mode
                // it fires anyway and a state change is a soundness bug.
                let pruned = planner.as_mut().is_some_and(|p| p.is_pure(&binding.code));
                if pruned {
                    stats.pruned_events += 1;
                    if !config.verify_prune {
                        // A pure handler cannot change the DOM, so the event
                        // is barren by construction; recording it keeps the
                        // recrawl history as complete as an unpruned crawl's.
                        new_history.record(
                            &binding.source,
                            binding.event_type,
                            &binding.code,
                            false,
                        );
                        continue;
                    }
                }
                // Equivalence/commutativity claims (docs/static-analysis.md):
                // a handler inherited barren from the parent state, or whose
                // class representative was already observed barren here, is
                // skipped — or fired and cross-checked in verify mode.
                let mut claimed_barren = false;
                if equiv && !pruned {
                    let p = planner.as_mut().expect("equiv implies planner");
                    if state_barren[state_id.index()].contains(&binding.code) {
                        claimed_barren = true;
                        stats.commute_pruned_events += 1;
                    } else if let Some(class) = p.class_of(&binding.code) {
                        if class_outcome.get(&class) == Some(&true) {
                            claimed_barren = true;
                            stats.equiv_pruned_events += 1;
                        }
                    }
                    if claimed_barren && !config.verify_equiv {
                        state_barren[state_id.index()].insert(binding.code.clone());
                        new_history.record(
                            &binding.source,
                            binding.event_type,
                            &binding.code,
                            false,
                        );
                        continue;
                    }
                }
                // The event body runs in a closure returning what became of
                // the firing, so the `crawl.event` span can label its result
                // without a push on every early exit.
                let ev_start = env.net.now();
                let result: &'static str = (|| {
                    // Rollback to the source state before every event
                    // (Alg. 3.1.1 line 17): both the DOM and the JS globals.
                    let rb_start = env.net.now();
                    browser.restore(&snapshots[state_id.index()]);
                    env.charge_cpu(config.costs.rollback_micros);
                    env.rec.push0("crawl.rollback", rb_start, env.net.now());

                    let outcome = browser.fire_event(&binding.code, env);
                    stats.events_fired += 1;
                    if outcome.attempted_ajax() {
                        stats.events_with_ajax += 1;
                    }
                    stats.failed_xhr += outcome.failed_xhr as u64;
                    if outcome.js_error.is_some() {
                        stats.js_errors += 1;
                        return "js_error";
                    }
                    if outcome.exhausted_xhr > 0 {
                        // An XHR exhausted every retry mid-event: whatever DOM
                        // the handler left behind is built on a failed fetch.
                        // Record a partial state and move on without
                        // materializing it — graceful degradation means missing
                        // edges, never corrupt states. The event is also left
                        // out of the history (its productivity is unknown).
                        stats.partial_states += 1;
                        return "partial";
                    }

                    let new_hash = browser.state_hash(env);
                    let changed = new_hash != model.states[state_id.index()].hash;
                    new_history.record(&binding.source, binding.event_type, &binding.code, changed);
                    if !changed {
                        return "unchanged"; // DOM unchanged: no transition.
                    }

                    let target = if let Some(existing) = model.state_by_hash(new_hash) {
                        stats.duplicates += 1;
                        existing.id
                    } else if model.state_count() < config.max_states {
                        let text = browser.doc().document_text();
                        env.charge_cpu(config.costs.state_micros);
                        let dom_html = config.store_dom.then(|| browser.doc().to_html());
                        let id = model.add_state(new_hash, text, dom_html);
                        snapshots.push(browser.snapshot());
                        state_barren.push(Default::default());
                        parent_action.push(Some((state_id.index(), binding.code.clone())));
                        queue.push_back(id);
                        id
                    } else {
                        // State cap reached (infinite-expansion guard): the
                        // transition target is not materialized.
                        return "state_cap";
                    };

                    env.charge_cpu(config.costs.transition_micros);
                    // Annotate the transition with its modified targets
                    // (Table 2.1) by diffing the source-state DOM against the
                    // current one.
                    let targets = ajax_dom::diff::changed_roots(
                        snapshots[state_id.index()].doc(),
                        browser.doc(),
                    )
                    .into_iter()
                    .map(|t| t.element)
                    .collect();
                    model.add_transition(Transition {
                        from: state_id,
                        to: target,
                        source: binding.source.clone(),
                        event: binding.event_type,
                        action: binding.code.clone(),
                        targets,
                    });
                    "transition"
                })();
                if pruned && matches!(result, "transition" | "state_cap") {
                    stats.prune_mismatches += 1;
                }
                if equiv {
                    // Record this firing for later members of its class and
                    // for barren inheritance into child states. `or_insert`
                    // keeps the *first* fired member as the representative.
                    let p = planner.as_mut().expect("equiv implies planner");
                    match result {
                        "unchanged" => {
                            state_barren[state_id.index()].insert(binding.code.clone());
                            if let Some(class) = p.class_of(&binding.code) {
                                class_outcome.entry(class).or_insert(true);
                            }
                        }
                        "transition" | "state_cap" | "js_error" | "partial" => {
                            if let Some(class) = p.class_of(&binding.code) {
                                class_outcome.entry(class).or_insert(false);
                            }
                        }
                        _ => {}
                    }
                    if claimed_barren && matches!(result, "transition" | "state_cap") {
                        stats.equiv_mismatches += 1;
                    }
                }
                if env.rec.is_on() {
                    env.rec.push(
                        "crawl.event",
                        ev_start,
                        env.net.now(),
                        vec![
                            ("source", AttrValue::str(binding.source.as_str())),
                            ("result", AttrValue::str(result)),
                        ],
                    );
                }
            }
        }
        Ok(())
    }
}

/// The per-page static crawl planner (docs/static-analysis.md): the page
/// is effect-analyzed once after load; purity verdicts for the initial
/// DOM's handlers come pre-computed, and snippets first seen in later
/// states (server-injected fragments) are summarized on demand and
/// memoized.
struct StaticPlanner {
    analysis: crate::analysis::PageAnalysis,
    memo: HashMap<String, bool>,
    /// Per-snippet effect summaries (`None` = unparseable), lazily extended
    /// with snippets first seen in injected fragments.
    summaries: HashMap<String, Option<ajax_js::EffectSummary>>,
    /// Canonical signature → dense class id. Grows as injected snippets
    /// introduce new signatures; ids are stable within one page crawl.
    sig_classes: HashMap<String, u32>,
    /// Snippet → its equivalence class (`None` = unparseable, never classed).
    class_memo: HashMap<String, Option<u32>>,
    /// Commutativity verdicts, keyed by the (lexicographically ordered)
    /// snippet pair — the relation is symmetric.
    commute_memo: HashMap<(String, String), bool>,
}

impl StaticPlanner {
    fn new(body: &str, config: &CrawlConfig, env: &mut CrawlEnv<'_>) -> Self {
        let start = env.net.now();
        // The analysis re-parses the document and every script; charge it
        // like the parse it is so the virtual clock stays honest.
        env.charge_cpu(config.costs.parse_cost(body.len()));
        let analysis = crate::analysis::analyze_page(body);
        let memo: HashMap<String, bool> = analysis
            .verdicts()
            .map(|(code, v)| (code.to_string(), v.is_pure()))
            .collect();
        let summaries: HashMap<String, Option<ajax_js::EffectSummary>> = analysis
            .verdicts()
            .map(|(code, v)| (code.to_string(), v.parsed.then(|| v.summary.clone())))
            .collect();
        if env.rec.is_on() {
            let pure = memo.values().filter(|p| **p).count() as u64;
            env.rec.push(
                "analysis.page",
                start,
                env.net.now(),
                vec![
                    (
                        "functions",
                        AttrValue::U64(analysis.graph.functions().count() as u64),
                    ),
                    ("bindings", AttrValue::U64(analysis.bindings.len() as u64)),
                    ("pure_snippets", AttrValue::U64(pure)),
                    (
                        "script_errors",
                        AttrValue::U64(analysis.script_errors as u64),
                    ),
                ],
            );
        }
        StaticPlanner {
            analysis,
            memo,
            summaries,
            sig_classes: HashMap::new(),
            class_memo: HashMap::new(),
            commute_memo: HashMap::new(),
        }
    }

    /// True when firing `code` provably cannot change application state.
    fn is_pure(&mut self, code: &str) -> bool {
        if let Some(&pure) = self.memo.get(code) {
            return pure;
        }
        let pure = self
            .analysis
            .effects
            .snippet_summary_src(code)
            .map(|s| s.is_pure())
            .unwrap_or(false);
        self.memo.insert(code.to_string(), pure);
        pure
    }

    /// The effect summary of a handler snippet: pre-computed for initial-DOM
    /// handlers, summarized on demand for snippets first seen in injected
    /// fragments. `None` when the snippet does not parse.
    fn summary_of(&mut self, code: &str) -> Option<ajax_js::EffectSummary> {
        if let Some(cached) = self.summaries.get(code) {
            return cached.clone();
        }
        let summary = self.analysis.effects.snippet_summary_src(code).ok();
        self.summaries.insert(code.to_string(), summary.clone());
        summary
    }

    /// The equivalence class of a handler snippet (`None` when unparseable).
    /// Class ids are allocated lazily per canonical signature, so snippets
    /// injected mid-crawl join existing classes when isomorphic.
    fn class_of(&mut self, code: &str) -> Option<u32> {
        if let Some(cached) = self.class_memo.get(code) {
            return *cached;
        }
        let class = self.summary_of(code).map(|sum| {
            let sig = crate::analysis::canonical_signature(&sum);
            let next = self.sig_classes.len() as u32;
            *self.sig_classes.entry(sig).or_insert(next)
        });
        self.class_memo.insert(code.to_string(), class);
        class
    }

    /// True when the two snippets provably commute (memoized; symmetric).
    fn commutes(&mut self, a: &str, b: &str) -> bool {
        let key = if a <= b {
            (a.to_string(), b.to_string())
        } else {
            (b.to_string(), a.to_string())
        };
        if let Some(&verdict) = self.commute_memo.get(&key) {
            return verdict;
        }
        let verdict = match (self.summary_of(a), self.summary_of(b)) {
            (Some(sa), Some(sb)) => self.analysis.summaries_commute(&sa, &sb),
            _ => false,
        };
        self.commute_memo.insert(key, verdict);
        verdict
    }
}

/// Case-insensitive ASCII substring test.
fn contains_ignore_case(haystack: &str, needle: &str) -> bool {
    if needle.is_empty() {
        return false;
    }
    let haystack = haystack.to_ascii_lowercase();
    haystack.contains(&needle.to_ascii_lowercase())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajax_webgen::{VidShareServer, VidShareSpec};

    fn vidshare(n: u32) -> Arc<VidShareServer> {
        Arc::new(VidShareServer::new(VidShareSpec::small(n)))
    }

    fn crawl(config: CrawlConfig, video: u32) -> PageCrawl {
        let server = vidshare(50);
        let mut crawler = Crawler::new(server, LatencyModel::Fixed(10_000), config);
        crawler
            .crawl_page(&Url::parse(&format!(
                "http://vidshare.example/watch?v={video}"
            )))
            .expect("crawl must succeed")
    }

    /// A multi-page video under the default small(50) spec.
    fn multi_page_video() -> (u32, u32) {
        let spec = VidShareSpec::small(50);
        for v in 0..50 {
            let pages = ajax_webgen::video_meta(&spec, v).comment_pages;
            if (3..=6).contains(&pages) {
                return (v, pages);
            }
        }
        panic!("no 3..6-page video in the first 50");
    }

    #[test]
    fn traditional_crawl_single_state() {
        let crawl = crawl(CrawlConfig::traditional(), 3);
        assert_eq!(crawl.model.state_count(), 1);
        assert_eq!(crawl.stats.events_fired, 0);
        assert_eq!(crawl.stats.ajax_network_calls, 0);
        assert!(crawl.stats.crawl_micros > 0);
        assert!(!crawl.model.states[0].text.is_empty());
    }

    #[test]
    fn ajax_crawl_discovers_all_comment_pages() {
        let (video, pages) = multi_page_video();
        let result = crawl(CrawlConfig::ajax(), video);
        assert_eq!(
            result.model.state_count(),
            pages as usize,
            "one state per comment page"
        );
        // All states reachable from the initial one.
        for s in 1..result.model.state_count() {
            assert!(
                result.model.event_path(StateId(s as u32)).is_some(),
                "state {s} unreachable"
            );
        }
    }

    #[test]
    fn state_texts_contain_the_right_comments() {
        let (video, pages) = multi_page_video();
        let result = crawl(CrawlConfig::ajax(), video);
        let spec = VidShareSpec::small(50);
        // Every comment page's first comment appears in exactly the states
        // that show that page.
        for page in 1..=pages {
            let comment = ajax_webgen::text::comment_text(&spec, video, page, 0);
            assert!(
                result
                    .model
                    .states
                    .iter()
                    .any(|s| s.text.contains(&comment)),
                "comment of page {page} not found in any state"
            );
        }
    }

    #[test]
    fn hot_node_cache_reduces_network_calls() {
        let (video, _pages) = multi_page_video();
        let cached = crawl(CrawlConfig::ajax(), video);
        let uncached = crawl(CrawlConfig::ajax_no_cache(), video);

        // Same states either way (the cache must not change the model)...
        assert_eq!(cached.model.state_count(), uncached.model.state_count());
        let cached_hashes: Vec<u64> = cached.model.states.iter().map(|s| s.hash).collect();
        let uncached_hashes: Vec<u64> = uncached.model.states.iter().map(|s| s.hash).collect();
        assert_eq!(cached_hashes, uncached_hashes);

        // ...but strictly fewer network calls with the policy on.
        assert!(
            cached.stats.ajax_network_calls < uncached.stats.ajax_network_calls,
            "cached {} !< uncached {}",
            cached.stats.ajax_network_calls,
            uncached.stats.ajax_network_calls
        );
        assert!(cached.stats.cache_hits > 0);
        assert_eq!(uncached.stats.cache_hits, 0);
        // With one hot node per page, each distinct comment page is fetched
        // at most once: pages 2..=N plus possibly page 1 (reached via `prev`,
        // whose inline copy never went through the hot node).
        let states = cached.model.state_count() as u64;
        assert!(
            (states - 1..=states).contains(&cached.stats.ajax_network_calls),
            "expected {}..={} calls, got {}",
            states - 1,
            states,
            cached.stats.ajax_network_calls
        );
    }

    #[test]
    fn crawl_time_cached_faster() {
        let (video, _) = multi_page_video();
        let cached = crawl(CrawlConfig::ajax(), video);
        let uncached = crawl(CrawlConfig::ajax_no_cache(), video);
        assert!(
            cached.stats.network_micros < uncached.stats.network_micros,
            "caching must reduce network time"
        );
    }

    #[test]
    fn max_states_cap_respected() {
        let (video, pages) = multi_page_video();
        assert!(pages >= 3);
        let result = crawl(CrawlConfig::ajax().with_max_states(2), video);
        assert_eq!(result.model.state_count(), 2);
    }

    #[test]
    fn ajax_overhead_vs_traditional_shape() {
        // Aggregate over several pages: the per-page overhead factor must be
        // substantially above 1 and per-state overhead around 2 (Table 7.2).
        let server = vidshare(50);
        let mut trad = Crawler::new(
            Arc::clone(&server) as Arc<dyn Server>,
            LatencyModel::thesis_default(1),
            CrawlConfig::traditional(),
        );
        let mut ajax = Crawler::new(server, LatencyModel::thesis_default(1), CrawlConfig::ajax());
        let mut trad_total = 0u64;
        let mut ajax_total = 0u64;
        let mut states = 0u64;
        for v in 0..20 {
            let url = Url::parse(&format!("http://vidshare.example/watch?v={v}"));
            trad_total += trad.crawl_page(&url).unwrap().stats.crawl_micros;
            let pc = ajax.crawl_page(&url).unwrap();
            ajax_total += pc.stats.crawl_micros;
            states += pc.stats.states;
        }
        let per_page = ajax_total as f64 / trad_total as f64;
        let per_state = (ajax_total as f64 / states as f64) / (trad_total as f64 / 20.0);
        assert!(
            per_page > 3.0,
            "AJAX must cost much more per page (got {per_page:.2})"
        );
        assert!(
            (1.2..=5.0).contains(&per_state),
            "per-state overhead should be moderate (got {per_state:.2})"
        );
    }

    #[test]
    fn http_error_is_reported() {
        let server = vidshare(5);
        let mut crawler = Crawler::new(server, LatencyModel::Zero, CrawlConfig::ajax());
        let err = crawler
            .crawl_page(&Url::parse("http://vidshare.example/watch?v=99999"))
            .unwrap_err();
        assert!(matches!(err, CrawlError::Http { status: 404, .. }));
    }

    #[test]
    fn store_dom_keeps_replay_data() {
        let (video, _) = multi_page_video();
        let result = crawl(CrawlConfig::ajax().storing_dom(), video);
        assert!(result.model.page_html.is_some());
        assert!(result.model.states.iter().all(|s| s.dom_html.is_some()));
        assert!(!result.model.fetches.is_empty());
    }

    #[test]
    fn trace_matches_stats() {
        let (video, _) = multi_page_video();
        let result = crawl(CrawlConfig::ajax(), video);
        assert_eq!(
            result.trace.net_total(),
            result.stats.network_micros,
            "trace network total must equal measured network time"
        );
        assert_eq!(
            result.trace.duration(),
            result.stats.crawl_micros,
            "trace duration must equal crawl time"
        );
    }

    #[test]
    fn crawl_is_deterministic() {
        let (video, _) = multi_page_video();
        let a = crawl(CrawlConfig::ajax(), video);
        let b = crawl(CrawlConfig::ajax(), video);
        assert_eq!(a.model, b.model);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn static_prune_cuts_events_without_changing_the_model() {
        let (video, _) = multi_page_video();
        let pruned = crawl(CrawlConfig::ajax(), video);
        let unpruned = crawl(CrawlConfig::ajax().without_static_prune(), video);
        // The title-hover handler is proven stateless once per state.
        assert!(pruned.stats.pruned_events > 0, "hover must be pruned");
        assert_eq!(unpruned.stats.pruned_events, 0);
        assert!(
            pruned.stats.events_fired < unpruned.stats.events_fired,
            "pruning must fire fewer events: {} !< {}",
            pruned.stats.events_fired,
            unpruned.stats.events_fired
        );
        // Soundness: the discovered application model is identical.
        assert_eq!(pruned.model.states, unpruned.model.states);
        assert_eq!(pruned.model.transitions, unpruned.model.transitions);
    }

    #[test]
    fn verify_prune_finds_no_mismatches() {
        let (video, _) = multi_page_video();
        let verified = crawl(CrawlConfig::ajax().verifying_prune(), video);
        assert!(verified.stats.pruned_events > 0, "candidates exist");
        assert_eq!(verified.stats.prune_mismatches, 0, "analysis is sound");
        // Verify mode fires everything, so it matches the no-prune crawl.
        let baseline = crawl(CrawlConfig::ajax().without_static_prune(), video);
        assert_eq!(verified.stats.events_fired, baseline.stats.events_fired);
        assert_eq!(verified.model.states, baseline.model.states);
        assert_eq!(verified.model.transitions, baseline.model.transitions);
    }

    #[test]
    fn single_page_video_has_one_state() {
        let spec = VidShareSpec::small(50);
        let video = (0..50)
            .find(|&v| ajax_webgen::video_meta(&spec, v).comment_pages == 1)
            .expect("some single-page video");
        let result = crawl(CrawlConfig::ajax(), video);
        assert_eq!(result.model.state_count(), 1);
        assert_eq!(result.stats.ajax_network_calls, 0);
    }
}

#[cfg(test)]
mod guard_and_recrawl_tests {
    use super::*;
    use ajax_net::server::{FnServer, Request, Response};
    use ajax_webgen::{VidShareServer, VidShareSpec};
    use std::sync::Arc;

    /// A page with a destructive handler among the navigation.
    fn destructive_server() -> Arc<dyn Server> {
        Arc::new(FnServer(|req: &Request| match req.url.path.as_str() {
            "/page" => Response::html(
                "<html><head><script>\
                     var items = ['a', 'b'];\
                     function deleteItem() { items.pop(); poisonTheWell(); }\
                     function fetchMore(p) {\
                       var xhr = new XMLHttpRequest();\
                       xhr.open('GET', '/more?p=' + p, false);\
                       xhr.send(null);\
                       document.getElementById('box').innerHTML = xhr.responseText;\
                     }\
                     </script></head><body>\
                     <span id=\"kill\" onclick=\"deleteItem()\">Delete</span>\
                     <span id=\"more\" onclick=\"fetchMore(2)\">more</span>\
                     <div id=\"box\">first</div>\
                     </body></html>",
            ),
            "/more" => Response::html("<p>second batch</p>"),
            _ => Response::not_found(),
        }))
    }

    #[test]
    fn update_events_never_fired() {
        let mut crawler = Crawler::new(
            destructive_server(),
            LatencyModel::Zero,
            CrawlConfig::ajax(),
        );
        let crawl = crawler.crawl_page(&Url::parse("http://x/page")).unwrap();
        // deleteItem calls an undefined function; had it run, js_errors > 0.
        assert_eq!(crawl.stats.js_errors, 0, "Delete handler must not run");
        // The Delete control exists in both discovered states, so it is
        // skipped once per state.
        assert_eq!(crawl.stats.events_skipped, 2);
        assert_eq!(crawl.model.state_count(), 2, "fetchMore still crawled");
    }

    #[test]
    fn guard_disabled_fires_everything() {
        let mut crawler = Crawler::new(
            destructive_server(),
            LatencyModel::Zero,
            CrawlConfig {
                avoid_actions: Vec::new(),
                ..CrawlConfig::ajax()
            },
        );
        let crawl = crawler.crawl_page(&Url::parse("http://x/page")).unwrap();
        assert!(crawl.stats.js_errors > 0, "destructive handler ran");
    }

    /// A page whose pure handler arrives only in a server-injected
    /// fragment — it is absent from the initial DOM, so the planner must
    /// summarize and memoize it mid-crawl.
    fn injected_handler_server() -> Arc<dyn Server> {
        Arc::new(FnServer(|req: &Request| match req.url.path.as_str() {
            "/page" => Response::html(
                "<html><head><script>\
                     function noop(tag) { var t = tag; return t; }\
                     function fetchMore(p) {\
                       var xhr = new XMLHttpRequest();\
                       xhr.open('GET', '/more?p=' + p, false);\
                       xhr.send(null);\
                       document.getElementById('box').innerHTML = xhr.responseText;\
                     }\
                     </script></head><body>\
                     <span id=\"more\" onclick=\"fetchMore(2)\">more</span>\
                     <div id=\"box\">first</div>\
                     </body></html>",
            ),
            "/more" => Response::html("<p onmouseover=\"noop('late')\">second batch</p>"),
            _ => Response::not_found(),
        }))
    }

    #[test]
    fn planner_memoizes_handlers_injected_mid_crawl() {
        let mut crawler = Crawler::new(
            injected_handler_server(),
            LatencyModel::Zero,
            CrawlConfig::ajax(),
        );
        let crawl = crawler.crawl_page(&Url::parse("http://x/page")).unwrap();
        assert_eq!(crawl.model.state_count(), 2);
        // noop('late') exists only in the injected fragment, yet it is
        // proven pure and pruned on the second state.
        assert!(crawl.stats.pruned_events > 0, "injected handler pruned");

        let unpruned = Crawler::new(
            injected_handler_server(),
            LatencyModel::Zero,
            CrawlConfig::ajax().without_static_prune(),
        )
        .crawl_page(&Url::parse("http://x/page"))
        .unwrap();
        assert_eq!(crawl.model.states, unpruned.model.states);
        assert_eq!(crawl.model.transitions, unpruned.model.transitions);
        assert!(crawl.stats.events_fired < unpruned.stats.events_fired);
    }

    #[test]
    fn script_parse_failures_surface_in_stats() {
        let server: Arc<dyn Server> = Arc::new(FnServer(|req: &Request| {
            if req.url.path == "/page" {
                Response::html(
                    "<html><head><script>function broken( {</script></head>\
                     <body><div id=\"box\">x</div></body></html>",
                )
            } else {
                Response::not_found()
            }
        }));
        let mut crawler = Crawler::new(server, LatencyModel::Zero, CrawlConfig::ajax());
        let crawl = crawler.crawl_page(&Url::parse("http://x/page")).unwrap();
        assert_eq!(crawl.stats.script_errors, 1);
    }

    #[test]
    fn recrawl_with_history_skips_barren_events() {
        let spec = VidShareSpec::small(50);
        let video = (0..50)
            .find(|&v| (3..=6).contains(&ajax_webgen::video_meta(&spec, v).comment_pages))
            .unwrap();
        let url = Url::parse(&spec.watch_url(video));
        let server = Arc::new(VidShareServer::new(spec));
        // Static pruning already removes the statically-provable barren
        // events (the title mouseover); disable it so this test isolates
        // the *runtime* history mechanism, which also catches events that
        // are barren for dynamic reasons the analysis cannot see.
        let mut crawler = Crawler::new(
            server,
            LatencyModel::Fixed(1_000),
            CrawlConfig::ajax().without_static_prune(),
        );

        let (first, history) = crawler.crawl_page_with_history(&url, None).unwrap();
        let (barren, productive) = history.counts();
        assert!(barren > 0, "the title mouseover is barren");
        assert!(productive > 0);

        let (second, _) = crawler
            .crawl_page_with_history(&url, Some(&history))
            .unwrap();
        // Timing differs (fewer events, different jitter sequence); the
        // *content* must not.
        assert_eq!(first.model.states, second.model.states);
        assert_eq!(first.model.transitions, second.model.transitions);
        assert!(
            second.stats.events_fired < first.stats.events_fired,
            "history must cut events: {} !< {}",
            second.stats.events_fired,
            first.stats.events_fired
        );
        assert!(second.stats.events_skipped > 0);
        assert!(
            second.stats.crawl_micros < first.stats.crawl_micros,
            "skipping events must save time"
        );
    }

    #[test]
    fn history_roundtrip_stable() {
        // Crawling with the produced history and collecting a new history
        // must reach a fixpoint (barren keys stay known via carry-over).
        let spec = VidShareSpec::small(50);
        let url = Url::parse(&spec.watch_url(3));
        let server = Arc::new(VidShareServer::new(spec));
        let mut crawler = Crawler::new(server, LatencyModel::Zero, CrawlConfig::ajax());
        let (_, h1) = crawler.crawl_page_with_history(&url, None).unwrap();
        let (m2, h2) = crawler.crawl_page_with_history(&url, Some(&h1)).unwrap();
        // Productive sets agree.
        assert_eq!(h1.counts().1, h2.counts().1);
        let (m3, _) = crawler.crawl_page_with_history(&url, Some(&h2)).unwrap();
        assert_eq!(m2.model.states, m3.model.states);
        assert_eq!(m2.model.transitions, m3.model.transitions);
    }
}

#[cfg(test)]
mod equiv_tests {
    use super::*;
    use ajax_net::server::{FnServer, Request, Response};
    use std::sync::Arc;

    fn crawl_with(server: Arc<dyn Server>, config: CrawlConfig) -> PageCrawl {
        let mut crawler = Crawler::new(server, LatencyModel::Zero, config);
        crawler.crawl_page(&Url::parse("http://x/page")).unwrap()
    }

    /// The photo-viewer fragment for photo `i` of 3: hero content plus the
    /// prev/next controls (constant-argument handlers, like VidShare's
    /// comment nav — the current photo is never linked, so hero events are
    /// productive in every state).
    fn photo_fragment(i: u32) -> String {
        let mut html = format!("<p>photo {i}</p>");
        if i > 0 {
            html.push_str(&format!(
                "<span class=\"nav\" onclick=\"loadPhoto({})\">prev</span>",
                i - 1
            ));
        }
        if i < 2 {
            html.push_str(&format!(
                "<span class=\"nav\" onclick=\"loadPhoto({})\">next</span>",
                i + 1
            ));
        }
        html
    }

    /// A gallery-style page: one AJAX hero region (productive nav events)
    /// plus redundant per-row caption handlers that are barren everywhere
    /// (each caption div is pre-filled with exactly what its handler
    /// writes) and live in one equivalence class.
    fn gallery_server() -> Arc<dyn Server> {
        Arc::new(FnServer(|req: &Request| {
            match req.url.path.as_str() {
            "/page" => Response::html(format!(
                "<html><head><script>\
                 function loadPhoto(i) {{\
                   var xhr = new XMLHttpRequest();\
                   xhr.open('GET', '/photo?i=' + i, false);\
                   xhr.send(null);\
                   document.getElementById('hero').innerHTML = xhr.responseText;\
                 }}\
                 function showCaption(i) {{ document.getElementById('cap_' + i).innerHTML = 'caption ' + i; }}\
                 </script></head><body>\
                 <div id=\"hero\">{}</div>\
                 <div id=\"caps\">\
                 <div id=\"cap_0\" onclick=\"showCaption(0)\">caption 0</div>\
                 <div id=\"cap_1\" onclick=\"showCaption(1)\">caption 1</div>\
                 <div id=\"cap_2\" onclick=\"showCaption(2)\">caption 2</div>\
                 </div></body></html>",
                photo_fragment(0)
            )),
            "/photo" => match req.url.param("i").and_then(|i| i.parse::<u32>().ok()) {
                Some(i) if i < 3 => Response::html(photo_fragment(i)),
                _ => Response::not_found(),
            },
            _ => Response::not_found(),
        }
        }))
    }

    #[test]
    fn equiv_and_commute_pruning_cut_events_without_changing_the_model() {
        let off = crawl_with(gallery_server(), CrawlConfig::ajax());
        let on = crawl_with(gallery_server(), CrawlConfig::ajax().with_equiv_prune());

        // One caption representative fires in the initial state; its class
        // siblings inherit the barren verdict there, and all captions are
        // carried barren into the photo states across the commuting hero
        // events.
        assert!(on.stats.equiv_pruned_events > 0, "{:?}", on.stats);
        assert!(on.stats.commute_pruned_events > 0, "{:?}", on.stats);
        // Every skipped event is an event the baseline fired.
        assert_eq!(
            on.stats.events_fired + on.stats.equiv_pruned_events + on.stats.commute_pruned_events,
            off.stats.events_fired
        );
        // The acceptance bar: ≥ 40% fewer fired events.
        assert!(
            on.stats.events_fired * 5 <= off.stats.events_fired * 3,
            "expected >=40% reduction: {} vs {}",
            on.stats.events_fired,
            off.stats.events_fired
        );
        // Soundness on this site: the discovered model is identical.
        assert_eq!(on.model.states, off.model.states);
        assert_eq!(on.model.transitions, off.model.transitions);

        // Verify mode fires everything and confirms every claim.
        let verify = crawl_with(gallery_server(), CrawlConfig::ajax().verifying_equiv());
        assert_eq!(verify.stats.equiv_mismatches, 0);
        assert_eq!(verify.stats.events_fired, off.stats.events_fired);
        assert!(verify.stats.equiv_pruned_events + verify.stats.commute_pruned_events > 0);
        assert_eq!(verify.model.states, off.model.states);
        assert_eq!(verify.model.transitions, off.model.transitions);
    }

    /// Two handlers with isomorphic summaries but different runtime
    /// behavior: `setA` rewrites its slot with the content it already has
    /// (barren), `setB` actually changes its slot. The class heuristic
    /// wrongly collapses them — which is exactly why `equiv_prune`
    /// defaults to off and `--verify-equiv` exists.
    fn twin_server() -> Arc<dyn Server> {
        Arc::new(FnServer(|req: &Request| match req.url.path.as_str() {
            "/page" => Response::html(
                "<html><head><script>\
                 function setA() { document.getElementById('slot_a').innerHTML = 'alpha'; }\
                 function setB() { document.getElementById('slot_b').innerHTML = 'beta'; }\
                 </script></head><body>\
                 <div id=\"slot_a\" onclick=\"setA()\">alpha</div>\
                 <div id=\"slot_b\" onclick=\"setB()\">other</div>\
                 </body></html>",
            ),
            _ => Response::not_found(),
        }))
    }

    #[test]
    fn verify_equiv_counts_mismatches_on_unsound_classes() {
        let off = crawl_with(twin_server(), CrawlConfig::ajax());
        assert_eq!(off.model.state_count(), 2, "setB is productive");

        // Blind pruning loses the state — the documented failure mode.
        let on = crawl_with(twin_server(), CrawlConfig::ajax().with_equiv_prune());
        assert!(on.stats.equiv_pruned_events > 0);
        assert_eq!(on.model.state_count(), 1, "heuristic overreach");

        // Verify mode counts the overreach and keeps the model intact.
        let verify = crawl_with(twin_server(), CrawlConfig::ajax().verifying_equiv());
        assert_eq!(verify.stats.equiv_mismatches, 1, "{:?}", verify.stats);
        assert_eq!(verify.model.states, off.model.states);
        assert_eq!(verify.model.transitions, off.model.transitions);
    }

    /// The list fragment: version `i` of the wrapper content. The rows are
    /// byte-identical across versions (their handlers are barren
    /// everywhere); only the header paragraph changes.
    fn list_fragment(i: u32) -> String {
        format!(
            "<p>list {i}</p>\
             <div id=\"row_0\" onclick=\"touchRow(0)\">row 0</div>\
             <div id=\"row_1\" onclick=\"touchRow(1)\">row 1</div>\
             <span onclick=\"swapList({})\">flip</span>",
            1 - i
        )
    }

    /// A page whose productive event rewrites the *ancestor* of the barren
    /// rows: `swapList` writes `#wrap`, which contains `#row_*`. String
    /// overlap alone would call them disjoint; the document-containment
    /// refinement must block barren inheritance across the swap.
    fn nested_server() -> Arc<dyn Server> {
        Arc::new(FnServer(|req: &Request| {
            match req.url.path.as_str() {
            "/page" => Response::html(format!(
                "<html><head><script>\
                 function swapList(i) {{\
                   var xhr = new XMLHttpRequest();\
                   xhr.open('GET', '/list?i=' + i, false);\
                   xhr.send(null);\
                   document.getElementById('wrap').innerHTML = xhr.responseText;\
                 }}\
                 function touchRow(i) {{ document.getElementById('row_' + i).innerHTML = 'row ' + i; }}\
                 </script></head><body>\
                 <div id=\"wrap\">{}</div>\
                 </body></html>",
                list_fragment(1)
            )),
            "/list" => match req.url.param("i").and_then(|i| i.parse::<u32>().ok()) {
                Some(i) if i < 2 => Response::html(list_fragment(i)),
                _ => Response::not_found(),
            },
            _ => Response::not_found(),
        }
        }))
    }

    #[test]
    fn ancestor_write_blocks_commute_inheritance() {
        let off = crawl_with(nested_server(), CrawlConfig::ajax());
        let on = crawl_with(nested_server(), CrawlConfig::ajax().with_equiv_prune());
        // The row verdicts must NOT ride across the wrap rewrite: each new
        // state re-fires a row representative instead of inheriting.
        assert_eq!(on.stats.commute_pruned_events, 0, "{:?}", on.stats);
        // Within each state the class still collapses the second row.
        assert_eq!(on.stats.equiv_pruned_events, 2, "{:?}", on.stats);
        assert_eq!(on.model.states, off.model.states);
        assert_eq!(on.model.transitions, off.model.transitions);
        let verify = crawl_with(nested_server(), CrawlConfig::ajax().verifying_equiv());
        assert_eq!(verify.stats.equiv_mismatches, 0);
    }
}

#[cfg(test)]
mod focused_tests {
    use super::*;
    use ajax_webgen::{VidShareServer, VidShareSpec};
    use std::sync::Arc;

    fn crawl_many(config: CrawlConfig, n: u32) -> PageStats {
        let server = Arc::new(VidShareServer::new(VidShareSpec::small(n)));
        let mut crawler = Crawler::new(server, LatencyModel::Fixed(1_000), config);
        let mut total = PageStats::default();
        for v in 0..n {
            let url = Url::parse(&format!("http://vidshare.example/watch?v={v}"));
            total.merge(&crawler.crawl_page(&url).unwrap().stats);
        }
        total
    }

    #[test]
    fn focused_crawl_saves_work() {
        let full = crawl_many(CrawlConfig::ajax(), 30);
        // "unknown" appears only in the showcase video's description —
        // unlike title words, it never leaks into other pages via
        // related-link anchor text — so every other page is off-topic.
        let focused = crawl_many(CrawlConfig::ajax().focused_on(["unknown"]), 30);
        assert!(
            focused.ajax_network_calls < full.ajax_network_calls / 3,
            "focused {} vs full {}",
            focused.ajax_network_calls,
            full.ajax_network_calls
        );
        assert!(focused.states_not_expanded > 0);
        assert!(focused.crawl_micros < full.crawl_micros);
        assert!(focused.states <= full.states);
    }

    #[test]
    fn focused_crawl_keeps_relevant_states() {
        // The showcase video mentions morcheeba in every state (title), so a
        // morcheeba-focused crawl must discover all of its comment pages.
        let spec = VidShareSpec::small(30);
        let pages = ajax_webgen::video_meta(&spec, 0).comment_pages;
        let server = Arc::new(VidShareServer::new(spec));
        let mut crawler = Crawler::new(
            server,
            LatencyModel::Zero,
            CrawlConfig::ajax().focused_on(["morcheeba"]),
        );
        let crawl = crawler
            .crawl_page(&Url::parse("http://vidshare.example/watch?v=0"))
            .unwrap();
        assert_eq!(crawl.model.state_count(), pages as usize);
        assert_eq!(crawl.stats.states_not_expanded, 0);
    }

    #[test]
    fn unfocused_config_expands_everything() {
        let stats = crawl_many(CrawlConfig::ajax(), 10);
        assert_eq!(stats.states_not_expanded, 0);
    }
}
