//! The embedded "browser": one loaded page = an `ajax-dom` document plus an
//! `ajax-js` interpreter, wired together by a page host that provides the
//! `document` API and an `XMLHttpRequest` whose `send()` is the hot-node
//! interception point of thesis §4.4.

use crate::crawler::{CpuCostModel, FetchFailure, LastError, RetryPolicy};
use crate::hotnode::HotNodeCache;
use ajax_dom::hash::FnvHashMap;
use ajax_dom::{parse_document, Document, NodeId};
use ajax_js::{
    DebugHook, GlobalsSnapshot, Host, HostCtx, Interpreter, JsError, NoopHook, ObjId, Value,
};
use ajax_net::fault::NetError;
use ajax_net::sched::Segment;
use ajax_net::{Micros, NetClient, Url};
use ajax_obs::{AttrValue, Recorder};
use std::collections::HashSet;

/// Everything an event invocation may touch besides the page itself:
/// network, hot-node cache, cost model, retry policy, the CPU/network
/// trace being recorded for the parallel scheduler, and the span recorder.
pub struct CrawlEnv<'a> {
    pub net: &'a mut NetClient,
    pub cache: &'a mut HotNodeCache,
    /// Whether the hot-node policy is active (Alg. 4.2.1 vs Alg. 3.1.1).
    pub caching_enabled: bool,
    pub costs: &'a CpuCostModel,
    /// Retry policy applied to every fetch issued through this environment.
    pub retry: RetryPolicy,
    /// Alternating CPU/network segments of the page crawl.
    pub trace: &'a mut Vec<Segment>,
    /// Span recorder stamped on the virtual clock (no-op when tracing is
    /// disabled).
    pub rec: &'a mut Recorder,
    /// CPU time accrued since the last network segment.
    cpu_pending: Micros,
    /// Fetch attempts beyond the first (retries), page-wide.
    pub fetch_retries: u64,
}

impl<'a> CrawlEnv<'a> {
    /// Creates an environment around a client, cache, trace buffer and span
    /// recorder.
    pub fn new(
        net: &'a mut NetClient,
        cache: &'a mut HotNodeCache,
        caching_enabled: bool,
        costs: &'a CpuCostModel,
        retry: RetryPolicy,
        trace: &'a mut Vec<Segment>,
        rec: &'a mut Recorder,
    ) -> Self {
        Self {
            net,
            cache,
            caching_enabled,
            costs,
            retry,
            trace,
            rec,
            cpu_pending: 0,
            fetch_retries: 0,
        }
    }

    /// Charges CPU microseconds (virtual) to the clock and the trace.
    pub fn charge_cpu(&mut self, micros: Micros) {
        self.net.charge_cpu(micros);
        self.cpu_pending += micros;
    }

    /// Charges a pure wait (retry backoff): it occupies the process line
    /// like a network segment but transfers nothing.
    fn wait(&mut self, micros: Micros) {
        if micros == 0 {
            return;
        }
        if self.cpu_pending > 0 {
            self.trace.push(Segment::Cpu(self.cpu_pending));
            self.cpu_pending = 0;
        }
        self.net.charge_wait(micros);
        self.trace.push(Segment::Net(micros));
    }

    /// Fetches over the network, recording the segment boundary. Transport
    /// faults surface as synthetic non-2xx responses (no retry) — the
    /// resilient path is [`Self::fetch_with_retry`].
    pub fn fetch(&mut self, url: &Url) -> (ajax_net::Response, Micros) {
        if self.cpu_pending > 0 {
            self.trace.push(Segment::Cpu(self.cpu_pending));
            self.cpu_pending = 0;
        }
        let (resp, cost) = self.net.fetch_timed(url);
        self.trace.push(Segment::Net(cost));
        (resp, cost)
    }

    /// One fallible fetch: like [`Self::fetch`] but transport faults are
    /// surfaced as [`NetError`] instead of synthetic statuses. The burned
    /// virtual time is recorded in the trace either way.
    pub fn try_fetch(&mut self, url: &Url) -> Result<(ajax_net::Response, Micros), NetError> {
        if self.cpu_pending > 0 {
            self.trace.push(Segment::Cpu(self.cpu_pending));
            self.cpu_pending = 0;
        }
        match self.net.try_fetch_timed(url) {
            Ok((resp, cost)) => {
                self.trace.push(Segment::Net(cost));
                Ok((resp, cost))
            }
            Err(e) => {
                self.trace.push(Segment::Net(e.cost()));
                Err(e)
            }
        }
    }

    /// The resilient fetch: retries transport faults and retryable statuses
    /// under the environment's [`RetryPolicy`], sleeping the deterministic
    /// backoff (virtual micros) between attempts. `Ok` carries a 2xx
    /// response; a non-retryable status returns immediately as
    /// [`FetchFailure::Http`]; running out of attempts (or timeout budget)
    /// returns [`FetchFailure::Exhausted`].
    pub fn fetch_with_retry(
        &mut self,
        url: &Url,
    ) -> Result<(ajax_net::Response, u32), FetchFailure> {
        let policy = self.retry;
        let budget_start = self.net.now();
        let mut attempt: u32 = 0;
        loop {
            attempt += 1;
            let last = match self.try_fetch(url) {
                Ok((resp, _cost)) => {
                    if resp.is_ok() {
                        return Ok((resp, attempt));
                    }
                    if !policy.retry_status(resp.status) {
                        return Err(FetchFailure::Http {
                            response: resp,
                            attempts: attempt,
                        });
                    }
                    LastError::Http(resp.status)
                }
                Err(NetError::Timeout { .. }) => LastError::Timeout,
                Err(NetError::Dropped { .. }) => LastError::Dropped,
            };
            let out_of_budget =
                policy.budget_micros > 0 && self.net.now() - budget_start >= policy.budget_micros;
            if attempt >= policy.max_attempts.max(1) || out_of_budget {
                return Err(FetchFailure::Exhausted {
                    url: url.to_string(),
                    attempts: attempt,
                    last,
                });
            }
            self.fetch_retries += 1;
            self.wait(policy.backoff(&url.to_string(), attempt));
        }
    }

    /// Flushes any pending CPU time into the trace (call at page end).
    pub fn flush_trace(&mut self) {
        if self.cpu_pending > 0 {
            self.trace.push(Segment::Cpu(self.cpu_pending));
            self.cpu_pending = 0;
        }
    }
}

/// Per-event accounting, reported by [`Browser::fire_event`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventOutcome {
    /// JS error raised by the handler, if any (the crawl continues).
    pub js_error: Option<JsError>,
    /// Interpreter steps the handler burned.
    pub js_steps: u64,
    /// AJAX calls that reached the network during this event.
    pub network_calls: u32,
    /// AJAX calls served from the hot-node cache during this event.
    pub cache_hits: u32,
    /// AJAX calls that completed with a non-2xx status (delivered to the
    /// script, which may or may not cope).
    pub failed_xhr: u32,
    /// AJAX calls that exhausted every retry: the script saw status 0 and an
    /// empty body, so the resulting DOM is a *partial* state.
    pub exhausted_xhr: u32,
}

impl EventOutcome {
    /// True when the event attempted at least one AJAX call.
    pub fn attempted_ajax(&self) -> bool {
        self.network_calls + self.cache_hits > 0
    }
}

/// Host objects live for the duration of one event invocation.
enum HostObj {
    Document,
    Element(NodeId),
    Xhr {
        url: Option<Url>,
        status: u16,
        response: String,
    },
}

/// The `ajax_js::Host` implementation giving page scripts their `document`
/// and `XMLHttpRequest`. Its `send()` implements Step 3 of the heuristic
/// policy (§4.2): intercept, look up the hot-node cache by the topmost stack
/// frame's `(function, args)`, and only go to the network on a miss.
struct PageHost<'a, 'b> {
    doc: &'a mut Document,
    base_url: &'a Url,
    env: &'a mut CrawlEnv<'b>,
    objects: FnvHashMap<u32, HostObj>,
    next_obj: u32,
    outcome: &'a mut EventOutcome,
}

const DOC_OBJ: u32 = 0;

impl<'a, 'b> PageHost<'a, 'b> {
    fn new(
        doc: &'a mut Document,
        base_url: &'a Url,
        env: &'a mut CrawlEnv<'b>,
        outcome: &'a mut EventOutcome,
    ) -> Self {
        let mut objects = FnvHashMap::default();
        objects.insert(DOC_OBJ, HostObj::Document);
        Self {
            doc,
            base_url,
            env,
            objects,
            next_obj: 1,
            outcome,
        }
    }

    fn alloc(&mut self, obj: HostObj) -> ObjId {
        let id = self.next_obj;
        self.next_obj += 1;
        self.objects.insert(id, obj);
        ObjId(id)
    }

    fn xhr_send(&mut self, obj: u32, ctx: &HostCtx<'_>) -> Result<Value, JsError> {
        let url = match self.objects.get(&obj) {
            Some(HostObj::Xhr { url: Some(url), .. }) => url.clone(),
            Some(HostObj::Xhr { url: None, .. }) => {
                return Err(JsError::host("XMLHttpRequest.send() before open()"))
            }
            _ => return Err(JsError::type_error("send() on a non-XHR object")),
        };

        // StackInfo: the topmost user function is the hot node; its rendered
        // actual arguments complete the cache key (thesis §4.4.1).
        let (function, key) = match ctx.top_frame() {
            Some(frame) => (frame.function.clone(), frame.key()),
            None => ("<inline>".to_string(), format!("<inline>({url})")),
        };

        let cached = self
            .env
            .caching_enabled
            .then(|| self.env.cache.lookup(&key))
            .flatten();
        let (status, body) = if let Some(cached) = cached {
            self.outcome.cache_hits += 1;
            if self.env.rec.is_on() {
                let now = self.env.net.now();
                self.env.rec.push(
                    "hotnode.hit",
                    now,
                    now,
                    vec![("function", AttrValue::str(&function))],
                );
            }
            (200, cached)
        } else {
            // One *logical* network call; retries under the policy are
            // accounted separately (`fetch_retries`).
            self.outcome.network_calls += 1;
            let fetch_start = self.env.net.now();
            let (status, body) = match self.env.fetch_with_retry(&url) {
                Ok((resp, _attempts)) => {
                    if self.env.caching_enabled {
                        self.env
                            .cache
                            .insert(&function, key, url.to_string(), resp.body.clone());
                    } else {
                        self.env.cache.record_uncached_call();
                    }
                    (resp.status, resp.body)
                }
                Err(FetchFailure::Http { response, .. }) => {
                    // Non-retryable error (e.g. 404): delivered to the
                    // script as a browser would, never cached.
                    self.outcome.failed_xhr += 1;
                    self.env.cache.record_uncached_call();
                    (response.status, response.body)
                }
                Err(FetchFailure::Exhausted { .. }) => {
                    // All retries burned: the script sees what a browser
                    // reports for a network-level failure — status 0, empty
                    // body. The caller flags the resulting state partial.
                    self.outcome.failed_xhr += 1;
                    self.outcome.exhausted_xhr += 1;
                    self.env.cache.record_uncached_call();
                    (0, String::new())
                }
            };
            if self.env.rec.is_on() {
                let end = self.env.net.now();
                self.env.rec.push(
                    "xhr.fetch",
                    fetch_start,
                    end,
                    vec![
                        ("url", AttrValue::str(url.to_string())),
                        ("status", AttrValue::U64(status as u64)),
                    ],
                );
            }
            (status, body)
        };

        if let Some(HostObj::Xhr {
            status: s,
            response,
            ..
        }) = self.objects.get_mut(&obj)
        {
            *s = status;
            *response = body;
        }
        Ok(Value::Undefined)
    }
}

impl Host for PageHost<'_, '_> {
    fn get_global(&mut self, name: &str) -> Option<Value> {
        (name == "document").then_some(Value::Object(ObjId(DOC_OBJ)))
    }

    fn construct(
        &mut self,
        class: &str,
        _args: &[Value],
        _ctx: &HostCtx<'_>,
    ) -> Result<Value, JsError> {
        match class {
            "XMLHttpRequest" => Ok(Value::Object(self.alloc(HostObj::Xhr {
                url: None,
                status: 0,
                response: String::new(),
            }))),
            other => Err(JsError::reference(format!("{other} is not a constructor"))),
        }
    }

    fn call_method(
        &mut self,
        obj: ObjId,
        method: &str,
        args: &[Value],
        ctx: &HostCtx<'_>,
    ) -> Result<Value, JsError> {
        match self.objects.get(&obj.0) {
            Some(HostObj::Document) => match method {
                "getElementById" => {
                    let id = args.first().map(Value::to_string_value).unwrap_or_default();
                    match self.doc.get_element_by_id(&id) {
                        Some(node) => Ok(Value::Object(self.alloc(HostObj::Element(node)))),
                        None => Ok(Value::Null),
                    }
                }
                other => Err(JsError::type_error(format!(
                    "document.{other} is not a function"
                ))),
            },
            Some(HostObj::Xhr { .. }) => match method {
                "open" => {
                    let url_arg = args
                        .get(1)
                        .map(Value::to_string_value)
                        .ok_or_else(|| JsError::host("open() needs a URL"))?;
                    let resolved = self.base_url.resolve(&url_arg);
                    if let Some(HostObj::Xhr { url, .. }) = self.objects.get_mut(&obj.0) {
                        *url = Some(resolved);
                    }
                    Ok(Value::Undefined)
                }
                "send" => self.xhr_send(obj.0, ctx),
                "setRequestHeader" | "abort" => Ok(Value::Undefined),
                other => Err(JsError::type_error(format!(
                    "xhr.{other} is not a function"
                ))),
            },
            Some(HostObj::Element(_)) => match method {
                "getAttribute" => {
                    let Some(HostObj::Element(node)) = self.objects.get(&obj.0) else {
                        unreachable!("matched element above")
                    };
                    let name = args.first().map(Value::to_string_value).unwrap_or_default();
                    Ok(self
                        .doc
                        .attr(*node, &name)
                        .map(Value::str)
                        .unwrap_or(Value::Null))
                }
                other => Err(JsError::type_error(format!(
                    "element.{other} is not a function"
                ))),
            },
            None => Err(JsError::type_error("method call on a stale object")),
        }
    }

    fn get_property(&mut self, obj: ObjId, prop: &str) -> Result<Value, JsError> {
        match self.objects.get(&obj.0) {
            Some(HostObj::Xhr {
                status, response, ..
            }) => Ok(match prop {
                "responseText" => Value::str(response.clone()),
                "status" => Value::Num(f64::from(*status)),
                "readyState" => Value::Num(4.0),
                _ => Value::Undefined,
            }),
            Some(HostObj::Element(node)) => Ok(match prop {
                "innerHTML" => Value::str(self.doc.inner_html(*node)),
                "id" => self
                    .doc
                    .attr(*node, "id")
                    .map(Value::str)
                    .unwrap_or(Value::Undefined),
                "tagName" => self
                    .doc
                    .tag_name(*node)
                    .map(|t| Value::str(t.to_uppercase()))
                    .unwrap_or(Value::Undefined),
                _ => Value::Undefined,
            }),
            Some(HostObj::Document) => Ok(Value::Undefined),
            None => Err(JsError::type_error("property read on a stale object")),
        }
    }

    fn set_property(
        &mut self,
        obj: ObjId,
        prop: &str,
        value: Value,
        _ctx: &HostCtx<'_>,
    ) -> Result<(), JsError> {
        match (self.objects.get(&obj.0), prop) {
            (Some(HostObj::Element(node)), "innerHTML") => {
                let node = *node;
                let html = value.to_string_value();
                // Re-parsing the fragment is CPU work (incremental model
                // maintenance is the thesis' main non-network cost, §7.2.3).
                self.env.charge_cpu(self.env.costs.parse_cost(html.len()));
                self.doc.set_inner_html(node, &html);
                Ok(())
            }
            (Some(_), _) => Ok(()), // Setting other props is a tolerated no-op.
            (None, _) => Err(JsError::type_error("property write on a stale object")),
        }
    }
}

/// A snapshot of the browser: DOM + JS globals. Cloned per discovered state
/// and restored before each event — the rollback of Alg. 3.1.1, line 17.
#[derive(Clone)]
pub struct BrowserSnapshot {
    doc: Document,
    globals: GlobalsSnapshot,
}

impl BrowserSnapshot {
    /// The snapshotted DOM (used for transition-target diffing).
    pub fn doc(&self) -> &Document {
        &self.doc
    }
}

/// The loaded page: document + interpreter.
pub struct Browser {
    url: Url,
    doc: Document,
    interp: Interpreter,
}

impl Browser {
    /// Loads a page: parses `html`, runs its `<script>` bodies, and fires
    /// `body.onload` (the AJAX-specific init of Alg. 3.1.1, line 3).
    /// Script errors are collected, not fatal.
    pub fn load(
        url: Url,
        html: &str,
        js_fuel: u64,
        env: &mut CrawlEnv<'_>,
    ) -> (Self, Vec<JsError>) {
        let (browser, errors, _outcome) = Self::load_with_outcome(url, html, js_fuel, env);
        (browser, errors)
    }

    /// Like [`Self::load`], also returning the aggregate [`EventOutcome`] of
    /// the load-time scripts and `onload` handler (XHR accounting: a page
    /// whose load-time XHR exhausts its retries starts in a partial state).
    pub fn load_with_outcome(
        url: Url,
        html: &str,
        js_fuel: u64,
        env: &mut CrawlEnv<'_>,
    ) -> (Self, Vec<JsError>, EventOutcome) {
        env.charge_cpu(env.costs.parse_cost(html.len()));
        let doc = parse_document(html);
        let mut browser = Self {
            url,
            doc,
            interp: Interpreter::with_fuel(js_fuel),
        };
        let mut errors = Vec::new();
        let mut outcome = EventOutcome::default();

        let scripts = browser.doc.script_sources();
        for src in scripts {
            if let Err(e) = browser.run_js(&src, env, &mut outcome, RunKind::Program) {
                errors.push(e);
            }
        }
        if let Some(onload) = ajax_dom::events::body_onload(&browser.doc) {
            if let Err(e) = browser.run_js(&onload, env, &mut outcome, RunKind::Snippet) {
                errors.push(e);
            }
        }
        (browser, errors, outcome)
    }

    /// The page URL.
    pub fn url(&self) -> &Url {
        &self.url
    }

    /// The current DOM.
    pub fn doc(&self) -> &Document {
        &self.doc
    }

    /// Mutable DOM access (tests and replay tooling).
    pub fn doc_mut(&mut self) -> &mut Document {
        &mut self.doc
    }

    /// The interpreter (for inspecting globals in tests).
    pub fn interp(&self) -> &Interpreter {
        &self.interp
    }

    /// Fires one event handler snippet against the current state.
    pub fn fire_event(&mut self, code: &str, env: &mut CrawlEnv<'_>) -> EventOutcome {
        let mut outcome = EventOutcome::default();
        if let Err(e) = self.run_js(code, env, &mut outcome, RunKind::Snippet) {
            outcome.js_error = Some(e);
        }
        outcome
    }

    fn run_js(
        &mut self,
        src: &str,
        env: &mut CrawlEnv<'_>,
        outcome: &mut EventOutcome,
        kind: RunKind,
    ) -> Result<(), JsError> {
        let steps_before = self.interp.steps();
        // The on-enter hot-node detector (§4.4.2): instrumentation that
        // recognizes frames whose function is a known hot node.
        let mut hook = HotEnterDetector::from_cache(env.cache);
        let mut host = PageHost::new(&mut self.doc, &self.url, env, outcome);
        let result = match kind {
            RunKind::Program => self
                .interp
                .load_program(src, &mut host, &mut hook)
                .map(|_| ()),
            RunKind::Snippet => self.interp.eval(src, &mut host, &mut hook).map(|_| ()),
        };
        let steps = self.interp.steps() - steps_before;
        outcome.js_steps += steps;
        env.charge_cpu(env.costs.js_cost(steps));
        result
    }

    /// Snapshots the browser (DOM + JS globals) for later rollback.
    pub fn snapshot(&self) -> BrowserSnapshot {
        BrowserSnapshot {
            doc: self.doc.clone(),
            globals: self.interp.snapshot_globals(),
        }
    }

    /// Restores a snapshot taken earlier on this page.
    pub fn restore(&mut self, snapshot: &BrowserSnapshot) {
        self.doc = snapshot.doc.clone();
        self.interp.restore_globals(&snapshot.globals);
    }

    /// Content hash of the current DOM (duplicate-state identity).
    pub fn state_hash(&self, env: &mut CrawlEnv<'_>) -> u64 {
        let normalized = self.doc.normalized();
        env.charge_cpu(env.costs.hash_cost(normalized.len()));
        ajax_dom::fnv64_str(&normalized)
    }
}

enum RunKind {
    Program,
    Snippet,
}

/// The `DebugFrameImpl.onEnter` analogue: notices when execution enters a
/// function already identified as a hot node (the early-detection path of
/// §4.4.2). Purely observational — interception happens at `send()`.
pub struct HotEnterDetector {
    hot_functions: HashSet<String>,
    /// Number of entries into known hot nodes observed.
    pub detections: u32,
}

impl HotEnterDetector {
    /// Builds a detector from the cache's current hot-function registry.
    pub fn from_cache(cache: &HotNodeCache) -> Self {
        // Snapshot the function names (the registry is tiny: YouTube has 1).
        let hot_functions = cache.hot_function_names().map(str::to_string).collect();
        Self {
            hot_functions,
            detections: 0,
        }
    }
}

impl DebugHook for HotEnterDetector {
    fn on_enter(&mut self, frame: &ajax_js::FrameInfo) -> ajax_js::EnterAction {
        if self.hot_functions.contains(&frame.function) {
            self.detections += 1;
        }
        ajax_js::EnterAction::Continue
    }
}

/// A no-op hook alias re-exported for embedders.
pub type NoHook = NoopHook;
