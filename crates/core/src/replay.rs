//! State reconstruction (thesis §5.4, "Result Aggregation").
//!
//! A search result is a `(URL, state)` pair, but a state has no URL of its
//! own — to present it, the engine must *reconstruct* it: load the page's
//! initial DOM and re-invoke the annotated events along the path from the
//! initial state to the target state. Because the crawler recorded every
//! `(url, body)` it fetched, replay runs fully offline against a
//! [`ReplayServer`] — no network, no staleness.

use crate::browser::{Browser, CrawlEnv};
use crate::crawler::CpuCostModel;
use crate::hotnode::HotNodeCache;
use crate::model::{AppModel, StateId};
use ajax_dom::Document;
use ajax_net::server::{Request, Response, Server};
use ajax_net::{LatencyModel, NetClient, Url};
use std::collections::HashMap;
use std::sync::Arc;

/// Serves the responses recorded during crawling (plus the page itself).
pub struct ReplayServer {
    bodies: HashMap<String, String>,
}

impl ReplayServer {
    /// Builds a replay server from a crawled model.
    pub fn from_model(model: &AppModel) -> Self {
        let mut bodies = HashMap::new();
        if let Some(page) = &model.page_html {
            bodies.insert(model.url.clone(), page.clone());
        }
        for fetch in &model.fetches {
            bodies.insert(fetch.url.clone(), fetch.body.clone());
        }
        Self { bodies }
    }
}

impl Server for ReplayServer {
    fn handle(&self, request: &Request) -> Response {
        match self.bodies.get(&request.url.to_string()) {
            Some(body) => Response::html(body.clone()),
            None => Response::not_found(),
        }
    }

    fn name(&self) -> &str {
        "replay"
    }
}

/// Why replay failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The model was crawled without `store_dom`, so there is no page HTML.
    NoPageHtml,
    /// No event path leads from the initial state to the target.
    Unreachable(StateId),
    /// Replaying the path produced a different state than the crawl did
    /// (would indicate non-determinism; surfaced for honesty).
    Diverged {
        expected_hash: u64,
        actual_hash: u64,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::NoPageHtml => write!(f, "model has no stored page HTML"),
            ReplayError::Unreachable(s) => write!(f, "state {s} is unreachable"),
            ReplayError::Diverged {
                expected_hash,
                actual_hash,
            } => write!(
                f,
                "replay diverged: expected {expected_hash:#x}, got {actual_hash:#x}"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Reconstructs the DOM of `target` by replaying the shortest event path
/// from the initial state (steps 1–3 of the §5.4 algorithm). Returns the
/// reconstructed document; "presenting it in a browser" is the caller's job.
pub fn reconstruct_state(model: &AppModel, target: StateId) -> Result<Document, ReplayError> {
    let page_html = model.page_html.as_ref().ok_or(ReplayError::NoPageHtml)?;
    let path = model
        .event_path(target)
        .ok_or(ReplayError::Unreachable(target))?;

    let server: Arc<dyn Server> = Arc::new(ReplayServer::from_model(model));
    let mut net = NetClient::new(server, LatencyModel::Zero);
    let mut cache = HotNodeCache::new();
    let costs = CpuCostModel::free();
    let mut trace = Vec::new();
    let mut rec = ajax_obs::Recorder::Off;
    // Replay runs against the recorded fetches: no faults, no retries.
    let mut env = CrawlEnv::new(
        &mut net,
        &mut cache,
        true,
        &costs,
        crate::crawler::RetryPolicy::none(),
        &mut trace,
        &mut rec,
    );

    let url = Url::parse(&model.url);
    let (mut browser, _errors) = Browser::load(url, page_html, 2_000_000, &mut env);

    for transition in &path {
        // JS errors during replay surface as divergence below.
        let _ = browser.fire_event(&transition.action, &mut env);
    }

    let actual_hash = browser.state_hash(&mut env);
    let expected_hash = model
        .state(target)
        .map(|s| s.hash)
        .ok_or(ReplayError::Unreachable(target))?;
    if actual_hash != expected_hash {
        return Err(ReplayError::Diverged {
            expected_hash,
            actual_hash,
        });
    }
    Ok(browser.doc().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crawler::{CrawlConfig, Crawler};
    use ajax_webgen::{VidShareServer, VidShareSpec};

    fn crawl_with_dom(video: u32) -> AppModel {
        let spec = VidShareSpec::small(50);
        let server = Arc::new(VidShareServer::new(spec));
        let mut crawler = Crawler::new(
            server,
            LatencyModel::Zero,
            CrawlConfig::ajax().storing_dom(),
        );
        crawler
            .crawl_page(&Url::parse(&format!(
                "http://vidshare.example/watch?v={video}"
            )))
            .unwrap()
            .model
    }

    fn multi_page_video() -> u32 {
        let spec = VidShareSpec::small(50);
        (0..50)
            .find(|&v| (3..=6).contains(&ajax_webgen::video_meta(&spec, v).comment_pages))
            .unwrap()
    }

    #[test]
    fn reconstructs_every_state() {
        let model = crawl_with_dom(multi_page_video());
        for state in &model.states {
            let doc = reconstruct_state(&model, state.id)
                .unwrap_or_else(|e| panic!("state {} failed: {e}", state.id));
            assert_eq!(
                doc.content_hash(),
                state.hash,
                "reconstructed DOM must hash to the crawled state"
            );
            assert_eq!(doc.document_text(), state.text);
        }
    }

    #[test]
    fn initial_state_needs_no_events() {
        let model = crawl_with_dom(multi_page_video());
        let doc = reconstruct_state(&model, StateId::INITIAL).unwrap();
        assert_eq!(doc.content_hash(), model.states[0].hash);
    }

    #[test]
    fn missing_page_html_reported() {
        let spec = VidShareSpec::small(10);
        let server = Arc::new(VidShareServer::new(spec));
        let mut crawler = Crawler::new(server, LatencyModel::Zero, CrawlConfig::ajax());
        let model = crawler
            .crawl_page(&Url::parse("http://vidshare.example/watch?v=1"))
            .unwrap()
            .model;
        assert_eq!(
            reconstruct_state(&model, StateId::INITIAL).unwrap_err(),
            ReplayError::NoPageHtml
        );
    }

    #[test]
    fn unreachable_state_reported() {
        let mut model = crawl_with_dom(multi_page_video());
        let lonely = model.add_state(0xDEAD, "orphan".into(), None);
        assert_eq!(
            reconstruct_state(&model, lonely).unwrap_err(),
            ReplayError::Unreachable(lonely)
        );
    }

    #[test]
    fn replay_makes_no_live_network_calls() {
        // The replay server only knows recorded URLs; if replay tried to
        // fetch anything else it would get 404s and diverge. Passing the
        // reconstruction test above implies offline-completeness; here we
        // additionally check the recorded fetch set is minimal but complete.
        let model = crawl_with_dom(multi_page_video());
        assert!(!model.fetches.is_empty());
        let urls: std::collections::HashSet<_> =
            model.fetches.iter().map(|f| f.url.as_str()).collect();
        assert_eq!(urls.len(), model.fetches.len(), "no duplicate records");
    }
}
