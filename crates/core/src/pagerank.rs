//! PageRank by power iteration.
//!
//! Used twice in the system, exactly as in the thesis:
//!
//! * by the **precrawler** over the hyperlink graph (URL-level PageRank,
//!   §6.2.1), and
//! * by the **indexer** over each page's transition graph, where the
//!   stationary distribution plays the role of the *AJAXRank* — "a
//!   measurement for the ranking order of the states within one AJAX Web
//!   page" (§5.3.3). The initial state receives the most mass; deeper,
//!   harder-to-reach states receive less.

/// Computes PageRank over `adjacency` (out-edges, node indices) with damping
/// `d`, iterating until L1 change < `tolerance` or `max_iterations`.
/// Dangling nodes distribute their mass uniformly. Returns a distribution
/// summing to ~1.
pub fn pagerank(
    adjacency: &[Vec<usize>],
    damping: f64,
    tolerance: f64,
    max_iterations: usize,
) -> Vec<f64> {
    let n = adjacency.len();
    if n == 0 {
        return Vec::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0; n];

    for _ in 0..max_iterations {
        next.fill((1.0 - damping) * uniform);
        let mut dangling_mass = 0.0;
        for (node, out) in adjacency.iter().enumerate() {
            if out.is_empty() {
                dangling_mass += rank[node];
            } else {
                let share = damping * rank[node] / out.len() as f64;
                for &target in out {
                    if target < n {
                        next[target] += share;
                    }
                }
            }
        }
        let dangling_share = damping * dangling_mass * uniform;
        for value in next.iter_mut() {
            *value += dangling_share;
        }

        let delta: f64 = rank
            .iter()
            .zip(next.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        std::mem::swap(&mut rank, &mut next);
        if delta < tolerance {
            break;
        }
    }
    rank
}

/// PageRank with the conventional damping 0.85 and sensible convergence
/// settings.
pub fn pagerank_default(adjacency: &[Vec<usize>]) -> Vec<f64> {
    pagerank(adjacency, 0.85, 1e-9, 200)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_sums_to_one(rank: &[f64]) {
        let sum: f64 = rank.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "ranks sum to {sum}");
    }

    #[test]
    fn empty_graph() {
        assert!(pagerank_default(&[]).is_empty());
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        // 0 -> 1 -> 2 -> 0
        let adj = vec![vec![1], vec![2], vec![0]];
        let rank = pagerank_default(&adj);
        assert_sums_to_one(&rank);
        for r in &rank {
            assert!((r - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn hub_gets_more_rank() {
        // Everyone links to node 0; node 0 links to node 1.
        let adj = vec![vec![1], vec![0], vec![0], vec![0]];
        let rank = pagerank_default(&adj);
        assert_sums_to_one(&rank);
        assert!(rank[0] > rank[2]);
        assert!(rank[1] > rank[2], "0's endorsement lifts 1");
        assert!((rank[2] - rank[3]).abs() < 1e-9, "symmetric nodes equal");
    }

    #[test]
    fn dangling_nodes_handled() {
        // 0 -> 1, 1 dangling.
        let adj = vec![vec![1], vec![]];
        let rank = pagerank_default(&adj);
        assert_sums_to_one(&rank);
        assert!(rank[1] > rank[0], "1 receives all of 0's mass");
    }

    #[test]
    fn initial_state_dominates_comment_chain() {
        // The AJAXRank use case: a chain s0 <-> s1 <-> s2 <-> s3 with jumps
        // from s0 — shaped like a comment pagination graph.
        let adj = vec![
            vec![1, 2, 3], // s0: next + two jumps
            vec![0, 2],    // s1: prev, next
            vec![1, 3],
            vec![2],
        ];
        let rank = pagerank_default(&adj);
        assert_sums_to_one(&rank);
        // Deeper states must not beat middle states reachable many ways;
        // chain ends get less than the well-connected middle.
        assert!(rank[2] > rank[3] || rank[1] > rank[3]);
    }

    #[test]
    fn out_of_range_edges_ignored() {
        let adj = vec![vec![1, 99], vec![0]];
        let rank = pagerank_default(&adj);
        assert_eq!(rank.len(), 2);
        assert!(rank.iter().all(|r| r.is_finite() && *r > 0.0));
    }

    #[test]
    fn converges_quickly_on_bigger_graph() {
        let n = 500;
        let adj: Vec<Vec<usize>> = (0..n).map(|i| vec![(i + 1) % n, (i * 7 + 3) % n]).collect();
        let rank = pagerank(&adj, 0.85, 1e-10, 500);
        assert_sums_to_one(&rank);
    }
}
