//! The parallel crawler (thesis ch. 6): `MpCrawler` is the `MPAjaxCrawler` —
//! it runs `proc_lines` concurrent "process lines", each serially consuming
//! URL partitions with its own independent `SimpleAjaxCrawler` (here: a
//! [`Crawler`] with its own network client). No communication happens
//! between lines; the hyperlink structure was already extracted by the
//! precrawling phase, which is exactly what makes this embarrassingly
//! parallel (§6.1).
//!
//! Two time axes:
//!
//! * **real**: partitions are crawled on OS threads (wall-clock parallelism);
//! * **virtual**: each partition's CPU/network trace is replayed through
//!   `ajax_net::sched::simulate` over `proc_lines` lines and `cores` CPU
//!   cores, yielding the deterministic makespan reported by the Table 7.3 /
//!   Fig 7.8 experiments.

use crate::checkpoint::{Checkpointer, FailureRecord, PageRecord};
use crate::crawler::{CrawlConfig, CrawlError, Crawler, PageStats};
use crate::model::AppModel;
use crate::partition::Partition;
use ajax_net::fault::FaultPlan;
use ajax_net::sched::{simulate, Segment, Task};
use ajax_net::{LatencyModel, Micros, Server, Url};
use ajax_obs::{Recorder, SpanEvent};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A page the partition ultimately gave up on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageFailure {
    pub url: String,
    /// The error of the *last* crawl attempt.
    pub error: CrawlError,
    /// Page-level crawl attempts (re-enqueue passes), not fetch attempts.
    pub attempts: u32,
    /// True when the page kept failing transiently and was quarantined after
    /// `quarantine_after` attempts — a poison URL the crawler stopped
    /// feeding. False for permanent failures (e.g. 404), abandoned at once.
    pub quarantined: bool,
}

/// Result of crawling one partition.
#[derive(Debug, Clone)]
pub struct PartitionResult {
    pub id: usize,
    /// Models in partition URL order (stable regardless of re-crawl passes).
    pub models: Vec<AppModel>,
    /// Aggregate stats over the partition's pages.
    pub stats: PageStats,
    /// Concatenated CPU/network trace of the partition (one serial
    /// `SimpleAjaxCrawler` run), including time burned on failed attempts.
    pub trace: Task,
    /// Pages that failed for good; the line continues past failures.
    pub failures: Vec<PageFailure>,
    /// Page-level re-crawl attempts beyond the first (end-of-partition
    /// re-enqueues of transiently-failed pages).
    pub page_retries: u64,
    /// Pages that failed at least once but succeeded on a later pass.
    pub recovered_pages: u64,
    /// Serial-local trace spans of the partition (empty unless tracing was
    /// enabled). Timestamps start at the partition's own virtual zero;
    /// [`MpCrawler::crawl`] drains them onto the simulated timeline.
    pub spans: Vec<SpanEvent>,
}

/// Result of a full parallel crawl.
#[derive(Debug, Clone)]
pub struct MpReport {
    /// Per-partition results, ordered by partition id.
    pub partitions: Vec<PartitionResult>,
    /// Aggregate stats over all pages.
    pub aggregate: PageStats,
    /// Virtual wall-clock time with `proc_lines` lines on `cores` cores.
    pub virtual_makespan: Micros,
    /// Virtual time a single line would need (serial execution).
    pub virtual_serial: Micros,
    /// Page-level re-crawl attempts across all partitions.
    pub page_retries: u64,
    /// Pages recovered by re-crawl passes across all partitions.
    pub recovered_pages: u64,
    /// Poison URLs quarantined after `quarantine_after` failing passes —
    /// a *subset* of [`failed_pages`](Self::failed_pages), not disjoint
    /// from it.
    pub quarantined_pages: u64,
    /// Every page lost for good: quarantined pages *plus* permanent
    /// failures (e.g. 404s abandoned on the first pass). Always
    /// `failed_pages == quarantined_pages + permanent_failures()`.
    pub failed_pages: u64,
    /// Trace spans from every partition, placed on the simulated timeline:
    /// each partition's serial-local span times are shifted by the virtual
    /// start `simulate` assigned its task, and its track is the process
    /// *line* (not the OS thread) that ran it — so the trace is
    /// deterministic even though OS threads pull partitions in racy order.
    /// Within a partition, span durations are the uncontended serial times;
    /// processor sharing under `cores < lines` stretches real virtual time
    /// but not these spans. Empty unless tracing was enabled.
    pub spans: Vec<SpanEvent>,
}

impl MpReport {
    /// All application models in partition order.
    pub fn into_models(self) -> Vec<AppModel> {
        self.partitions.into_iter().flat_map(|p| p.models).collect()
    }

    /// Parallel speedup in virtual time.
    pub fn speedup(&self) -> f64 {
        if self.virtual_makespan == 0 {
            1.0
        } else {
            self.virtual_serial as f64 / self.virtual_makespan as f64
        }
    }

    /// Pages abandoned on first contact (404 and friends): the part of
    /// [`failed_pages`](Self::failed_pages) that is *not* quarantined.
    pub fn permanent_failures(&self) -> u64 {
        self.failed_pages - self.quarantined_pages
    }
}

/// The multi-process-line crawler.
pub struct MpCrawler {
    server: Arc<dyn Server>,
    latency: LatencyModel,
    config: CrawlConfig,
    /// `MP_CRAWLER_NUM_OF_PROC_LINES`.
    pub proc_lines: usize,
    /// CPU cores of the (virtual) machine the lines share.
    pub cores: usize,
    /// Deterministic fault plan shared by every line's client (each line
    /// keeps its own attempt counters, so decisions stay schedule-independent).
    pub fault_plan: Option<FaultPlan>,
    /// Page-level crawl attempts before a transiently-failing URL is
    /// quarantined (bounds the number of end-of-partition re-crawl passes).
    pub quarantine_after: u32,
    /// When true every partition crawls with an enabled [`Recorder`] and
    /// the report carries the merged spans.
    pub trace: bool,
    /// Durable checkpoint sink: completed pages are recorded here and a
    /// snapshot committed every [`CrawlConfig::checkpoint_every`] pages.
    checkpointer: Option<Arc<Checkpointer>>,
    /// Pages restored from a previous process's checkpoint, keyed by URL —
    /// reused instead of re-crawled. Failed pages are *not* in this map:
    /// resume re-crawls them, and the deterministic fault plan reproduces
    /// their original outcome.
    restored: HashMap<String, PageRecord>,
}

impl MpCrawler {
    /// Creates a parallel crawler. The thesis machine was a dual-core Xeon
    /// running 4 process lines; those are the defaults.
    pub fn new(server: Arc<dyn Server>, latency: LatencyModel, config: CrawlConfig) -> Self {
        Self {
            server,
            latency,
            config,
            proc_lines: 4,
            cores: 2,
            fault_plan: None,
            quarantine_after: 3,
            trace: false,
            checkpointer: None,
            restored: HashMap::new(),
        }
    }

    /// Enables (or disables) span tracing for every partition.
    pub fn with_tracing(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the number of process lines.
    pub fn with_proc_lines(mut self, proc_lines: usize) -> Self {
        self.proc_lines = proc_lines.max(1);
        self
    }

    /// Sets the core count of the machine model.
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores.max(1);
        self
    }

    /// Attaches a deterministic fault plan (every line gets a copy).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Sets the quarantine threshold (page-level attempts, min 1).
    pub fn with_quarantine_after(mut self, attempts: u32) -> Self {
        self.quarantine_after = attempts.max(1);
        self
    }

    /// Attaches a durable checkpoint sink plus the pages restored from it
    /// (`restored` comes from [`crate::checkpoint::ResumeState::pages`]).
    /// Restored pages are emitted into their partitions without re-crawling;
    /// newly completed pages are recorded as they finish, with a snapshot
    /// committed every [`CrawlConfig::checkpoint_every`] pages.
    pub fn with_checkpointing(
        mut self,
        checkpointer: Arc<Checkpointer>,
        restored: HashMap<String, PageRecord>,
    ) -> Self {
        self.checkpointer = Some(checkpointer);
        self.restored = restored;
        self
    }

    /// Crawls one partition serially with a fresh crawler (fresh network
    /// client ⇒ per-partition determinism independent of thread scheduling).
    ///
    /// Failure handling: a page whose GET fails *transiently* (timeout, drop,
    /// 5xx exhaustion) is re-enqueued at the end of the partition and retried
    /// on a later pass; after `quarantine_after` failing passes it is
    /// quarantined. Permanent failures (e.g. 404) are abandoned immediately.
    fn crawl_partition(&self, partition: &Partition) -> PartitionResult {
        let mut crawler = Crawler::new(
            Arc::clone(&self.server),
            self.latency.clone(),
            self.config.clone(),
        );
        if let Some(plan) = &self.fault_plan {
            crawler = crawler.with_fault_plan(plan.clone());
        }
        if self.trace {
            crawler = crawler.with_recorder(Recorder::enabled());
        }
        let mut result = PartitionResult {
            id: partition.id,
            models: Vec::with_capacity(partition.urls.len()),
            stats: PageStats::default(),
            trace: Task::default(),
            failures: Vec::new(),
            page_retries: 0,
            recovered_pages: 0,
            spans: Vec::new(),
        };
        let n = partition.urls.len();
        let mut models: Vec<Option<AppModel>> = (0..n).map(|_| None).collect();
        let mut attempts: Vec<u32> = vec![0; n];
        // (url index, last error, quarantined) of pages given up on.
        let mut failed: Vec<(usize, CrawlError, bool)> = Vec::new();
        let mut segments: Vec<Segment> = Vec::new();

        // Pages already completed by a previous (crashed) process are
        // emitted from their checkpoint records; only the rest are crawled.
        let mut pending: Vec<usize> = Vec::new();
        for i in 0..n {
            if let Some(record) = self.restored.get(&partition.urls[i]) {
                attempts[i] = record.attempts;
                if record.attempts > 1 {
                    result.recovered_pages += 1;
                    result.page_retries += (record.attempts - 1) as u64;
                }
                result.stats.merge(&record.stats);
                models[i] = Some(record.model.clone());
            } else {
                pending.push(i);
            }
        }
        while !pending.is_empty() {
            let mut next_pass: Vec<usize> = Vec::new();
            for &i in &pending {
                attempts[i] += 1;
                let before = crawler.net().now();
                match crawler.crawl_page_with_history(&Url::parse(&partition.urls[i]), None) {
                    Ok((page, history)) => {
                        if attempts[i] > 1 {
                            result.recovered_pages += 1;
                        }
                        result.stats.merge(&page.stats);
                        segments.extend(page.trace.segments.iter().copied());
                        if let Some(checkpointer) = &self.checkpointer {
                            checkpointer.record_page(PageRecord {
                                url: partition.urls[i].clone(),
                                model: page.model.clone(),
                                stats: page.stats.clone(),
                                attempts: attempts[i],
                                history,
                            });
                        }
                        models[i] = Some(page.model);
                    }
                    Err(e) => {
                        // The burned virtual time (network + backoff of the
                        // failed attempts) still occupies the process line.
                        let burned = crawler.net().now() - before;
                        if burned > 0 {
                            segments.push(Segment::Net(burned));
                        }
                        if e.is_transient() && attempts[i] < self.quarantine_after {
                            result.page_retries += 1;
                            next_pass.push(i);
                        } else {
                            let quarantined = e.is_transient();
                            if let Some(checkpointer) = &self.checkpointer {
                                checkpointer.record_failure(FailureRecord {
                                    url: partition.urls[i].clone(),
                                    error: e.clone(),
                                    attempts: attempts[i],
                                    quarantined,
                                });
                            }
                            failed.push((i, e, quarantined));
                        }
                    }
                }
            }
            pending = next_pass;
        }

        // Emit models and failures in partition URL order: the index layout
        // must not depend on how many re-crawl passes happened.
        result.models = models.into_iter().flatten().collect();
        failed.sort_by_key(|(i, _, _)| *i);
        result.failures = failed
            .into_iter()
            .map(|(i, error, quarantined)| PageFailure {
                url: partition.urls[i].clone(),
                error,
                attempts: attempts[i],
                quarantined,
            })
            .collect();
        result.trace = Task::new(segments);
        result.spans = crawler.take_spans();
        result
    }

    /// Crawls all partitions over `proc_lines` OS threads (each line pulls
    /// the next unprocessed partition, exactly like `getPartitionID()`), and
    /// computes the virtual makespan of that execution.
    pub fn crawl(&self, partitions: &[Partition]) -> MpReport {
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<PartitionResult>> = Mutex::new(Vec::with_capacity(partitions.len()));

        std::thread::scope(|scope| {
            for _ in 0..self.proc_lines.max(1) {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(partition) = partitions.get(idx) else {
                        break;
                    };
                    let result = self.crawl_partition(partition);
                    results.lock().expect("no poisoned lock").push(result);
                });
            }
        });

        let mut partitions_done = results.into_inner().expect("threads joined");
        partitions_done.sort_by_key(|p| p.id);

        let mut aggregate = PageStats::default();
        let mut page_retries = 0u64;
        let mut recovered_pages = 0u64;
        let mut quarantined_pages = 0u64;
        let mut permanent_pages = 0u64;
        let mut failed_pages = 0u64;
        for p in &partitions_done {
            aggregate.merge(&p.stats);
            page_retries += p.page_retries;
            recovered_pages += p.recovered_pages;
            quarantined_pages += p.failures.iter().filter(|f| f.quarantined).count() as u64;
            permanent_pages += p.failures.iter().filter(|f| !f.quarantined).count() as u64;
            failed_pages += p.failures.len() as u64;
        }
        // Every lost page is exactly one of quarantined or permanent.
        debug_assert_eq!(failed_pages, quarantined_pages + permanent_pages);
        let tasks: Vec<Task> = partitions_done.iter().map(|p| p.trace.clone()).collect();
        let report = simulate(&tasks, self.proc_lines, self.cores);

        // Place each partition's serial-local spans on the simulated
        // timeline: shift by the task's virtual start and stamp the process
        // line the simulation chose. Both come from `simulate`, never from
        // the racy OS-thread execution, so the merged trace is
        // deterministic. `partitions_done` is in id order, which is also
        // the task order handed to `simulate`.
        let mut spans: Vec<SpanEvent> = Vec::new();
        if self.trace {
            for (i, p) in partitions_done.iter_mut().enumerate() {
                let offset = report.start.get(i).copied().unwrap_or(0);
                let line = report.line_of_task.get(i).copied().unwrap_or(0) as u32;
                for mut span in p.spans.drain(..) {
                    span.start += offset;
                    span.track = line;
                    spans.push(span);
                }
            }
        }

        MpReport {
            partitions: partitions_done,
            aggregate,
            virtual_makespan: report.makespan,
            virtual_serial: report.serial_time,
            page_retries,
            recovered_pages,
            quarantined_pages,
            failed_pages,
            spans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition_urls;
    use ajax_webgen::{VidShareServer, VidShareSpec};

    fn setup(n_videos: u32, partition_size: usize) -> (Arc<VidShareServer>, Vec<Partition>) {
        let spec = VidShareSpec::small(n_videos);
        let urls: Vec<String> = (0..n_videos).map(|v| spec.watch_url(v)).collect();
        let server = Arc::new(VidShareServer::new(spec));
        let partitions = partition_urls(&urls, partition_size);
        (server, partitions)
    }

    #[test]
    fn parallel_crawl_covers_all_pages() {
        let (server, partitions) = setup(24, 6);
        let mp = MpCrawler::new(server, LatencyModel::Fixed(2_000), CrawlConfig::ajax())
            .with_proc_lines(4)
            .with_cores(2);
        let report = mp.crawl(&partitions);
        let models = report.into_models();
        assert_eq!(models.len(), 24);
        let urls: std::collections::HashSet<_> = models.iter().map(|m| &m.url).collect();
        assert_eq!(urls.len(), 24, "every page crawled exactly once");
    }

    #[test]
    fn parallel_matches_serial_models() {
        let (server, partitions) = setup(12, 3);
        let mp = |lines: usize| {
            MpCrawler::new(
                Arc::clone(&server) as Arc<dyn Server>,
                LatencyModel::thesis_default(3),
                CrawlConfig::ajax(),
            )
            .with_proc_lines(lines)
        };
        let serial = mp(1).crawl(&partitions);
        let parallel = mp(4).crawl(&partitions);
        let serial_models = serial.into_models();
        let parallel_models = parallel.into_models();
        assert_eq!(
            serial_models, parallel_models,
            "parallelism must not change results"
        );
    }

    #[test]
    fn virtual_makespan_shrinks_with_lines() {
        let (server, partitions) = setup(16, 2);
        let run = |lines: usize| {
            MpCrawler::new(
                Arc::clone(&server) as Arc<dyn Server>,
                LatencyModel::thesis_default(1),
                CrawlConfig::ajax(),
            )
            .with_proc_lines(lines)
            .with_cores(2)
            .crawl(&partitions)
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one.virtual_serial, four.virtual_serial);
        assert!(
            four.virtual_makespan < one.virtual_makespan,
            "4 lines ({}) must beat 1 line ({})",
            four.virtual_makespan,
            one.virtual_makespan
        );
        assert!(four.speedup() > 1.5, "speedup {}", four.speedup());
    }

    #[test]
    fn failures_recorded_not_fatal() {
        let (server, _) = setup(5, 2);
        let partitions = vec![Partition {
            id: 1,
            urls: vec![
                "http://vidshare.example/watch?v=1".into(),
                "http://vidshare.example/watch?v=777".into(), // 404
                "http://vidshare.example/watch?v=2".into(),
            ],
        }];
        let mp = MpCrawler::new(server, LatencyModel::Zero, CrawlConfig::ajax());
        let report = mp.crawl(&partitions);
        let failure = &report.partitions[0].failures[0];
        assert_eq!(report.partitions[0].failures.len(), 1);
        assert_eq!(report.partitions[0].models.len(), 2);
        // A 404 is permanent: abandoned on the first pass, not quarantined.
        assert!(matches!(
            failure.error,
            CrawlError::Http { status: 404, .. }
        ));
        assert!(!failure.quarantined);
        assert_eq!(failure.attempts, 1);
        assert_eq!(report.failed_pages, 1);
        assert_eq!(report.quarantined_pages, 0);
        assert_eq!(report.page_retries, 0);
    }

    #[test]
    fn permanently_dead_urls_quarantined_after_k_attempts() {
        use ajax_net::fault::{Fault, FaultRule};
        let (server, _) = setup(6, 3);
        let partitions = vec![Partition {
            id: 0,
            urls: vec![
                "http://vidshare.example/watch?v=0".into(),
                "http://vidshare.example/watch?v=1".into(),
                "http://vidshare.example/watch?v=2".into(),
            ],
        }];
        // v=1 is permanently dead (every attempt 503); the rest are clean.
        let plan = FaultPlan::new(7).with_rule(FaultRule::matching(
            "v=1",
            1.0,
            Fault::Permanent { status: 503 },
        ));
        let mp = MpCrawler::new(server, LatencyModel::Zero, CrawlConfig::ajax())
            .with_proc_lines(1)
            .with_fault_plan(plan)
            .with_quarantine_after(3);
        let report = mp.crawl(&partitions);
        let partition = &report.partitions[0];
        assert_eq!(partition.models.len(), 2, "healthy pages crawled");
        assert_eq!(partition.failures.len(), 1);
        let failure = &partition.failures[0];
        assert!(failure.url.contains("v=1"));
        assert!(failure.quarantined, "5xx-forever is quarantined, not 404");
        assert_eq!(failure.attempts, 3, "exactly quarantine_after passes");
        assert!(matches!(
            failure.error,
            CrawlError::Exhausted { status: 503, .. }
        ));
        assert_eq!(report.quarantined_pages, 1);
        assert_eq!(report.page_retries, 2, "re-enqueued twice before giving up");
    }

    #[test]
    fn transient_pages_recovered_by_reenqueue() {
        use ajax_net::fault::{Fault, FaultRule};
        let (server, _) = setup(4, 4);
        let partitions = vec![Partition {
            id: 0,
            urls: (0..4)
                .map(|v| format!("http://vidshare.example/watch?v={v}"))
                .collect(),
        }];
        // Every watch page fails its first 4 fetch attempts with 503 — more
        // than one crawl attempt (3 fetches) absorbs, so page-level
        // re-enqueue must kick in — then succeeds forever.
        let plan = FaultPlan::new(3).with_rule(FaultRule::matching(
            "/watch",
            1.0,
            Fault::Transient {
                status: 503,
                fail_attempts: 4,
            },
        ));
        let mp = MpCrawler::new(server, LatencyModel::Zero, CrawlConfig::ajax())
            .with_proc_lines(1)
            .with_fault_plan(plan);
        let report = mp.crawl(&partitions);
        let partition = &report.partitions[0];
        assert_eq!(partition.failures.len(), 0, "zero lost pages");
        assert_eq!(partition.models.len(), 4);
        assert_eq!(partition.recovered_pages, 4, "all recovered on pass 2");
        assert!(report.page_retries >= 4);
        // Models come out in partition URL order despite the extra pass.
        let urls: Vec<&str> = partition.models.iter().map(|m| m.url.as_str()).collect();
        assert_eq!(
            urls,
            partitions[0]
                .urls
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn disjoint_partitions_union_hot_functions() {
        use ajax_net::server::{FnServer, Request, Response};
        // Two pages, each with its own hot function. Two partitions, so the
        // counts meet only in the aggregate merge — the old `max` semantics
        // reported 1 hot node here instead of 2.
        fn page(func: &str, param: &str) -> Response {
            Response::html(format!(
                "<html><head><script>\
                 function {func}() {{\
                   var xhr = new XMLHttpRequest();\
                   xhr.open('GET', '/data?p={param}', false);\
                   xhr.send(null);\
                   document.getElementById('out').innerHTML = xhr.responseText;\
                 }}\
                 </script></head>\
                 <body><div id=\"out\">empty</div>\
                 <button onclick=\"{func}()\">go</button></body></html>"
            ))
        }
        let server = Arc::new(FnServer(|req: &Request| match req.url.path.as_str() {
            "/a" => page("fetchA", "a"),
            "/b" => page("fetchB", "b"),
            "/data" => Response::html(format!("<p>{}</p>", req.url.param("p").unwrap_or("?"))),
            _ => Response::not_found(),
        }));
        let partitions = vec![
            Partition {
                id: 0,
                urls: vec!["http://site.example/a".into()],
            },
            Partition {
                id: 1,
                urls: vec!["http://site.example/b".into()],
            },
        ];
        let mp = MpCrawler::new(server, LatencyModel::Zero, CrawlConfig::ajax()).with_proc_lines(2);
        let report = mp.crawl(&partitions);
        assert_eq!(
            report.aggregate.hot_nodes, 2,
            "each partition found a distinct hot function"
        );
        let names: Vec<&str> = report
            .aggregate
            .hot_functions
            .iter()
            .map(String::as_str)
            .collect();
        assert_eq!(names, ["fetchA", "fetchB"]);
    }

    #[test]
    fn failed_pages_split_into_quarantined_and_permanent() {
        use ajax_net::fault::{Fault, FaultRule};
        let (server, _) = setup(6, 3);
        let partitions = vec![Partition {
            id: 0,
            urls: vec![
                "http://vidshare.example/watch?v=0".into(),
                "http://vidshare.example/watch?v=777".into(), // permanent 404
                "http://vidshare.example/watch?v=1".into(),   // poisoned 503
            ],
        }];
        let plan = FaultPlan::new(11).with_rule(FaultRule::matching(
            "v=1",
            1.0,
            Fault::Permanent { status: 503 },
        ));
        let mp = MpCrawler::new(server, LatencyModel::Zero, CrawlConfig::ajax())
            .with_proc_lines(1)
            .with_fault_plan(plan)
            .with_quarantine_after(2);
        let report = mp.crawl(&partitions);
        assert_eq!(report.failed_pages, 2);
        assert_eq!(report.quarantined_pages, 1, "the 503 poison URL");
        assert_eq!(report.permanent_failures(), 1, "the 404");
        assert_eq!(
            report.failed_pages,
            report.quarantined_pages + report.permanent_failures()
        );
    }

    #[test]
    fn traced_parallel_crawl_is_deterministic_with_line_tracks() {
        let (server, partitions) = setup(8, 2);
        let run = || {
            MpCrawler::new(
                Arc::clone(&server) as Arc<dyn Server>,
                LatencyModel::Fixed(2_000),
                CrawlConfig::ajax(),
            )
            .with_proc_lines(2)
            .with_cores(2)
            .with_tracing(true)
            .crawl(&partitions)
        };
        let a = run();
        let b = run();
        assert!(!a.spans.is_empty(), "tracing produced spans");
        assert_eq!(a.spans, b.spans, "same-seed runs must trace identically");
        // Tracks come from the simulated line assignment, not OS threads.
        let tracks: std::collections::BTreeSet<u32> = a.spans.iter().map(|s| s.track).collect();
        assert!(tracks.len() > 1, "4 partitions over 2 lines use both lines");
        assert!(tracks.iter().all(|&t| (t as usize) < 2));
        // The merge drained per-partition spans into the report.
        assert!(a.partitions.iter().all(|p| p.spans.is_empty()));
        // Later partitions on a line start after its earlier ones.
        let kinds: std::collections::BTreeSet<&str> = a.spans.iter().map(|s| s.name).collect();
        assert!(kinds.contains("crawl.page"));
        assert!(kinds.contains("crawl.event"));
    }

    #[test]
    fn untraced_crawl_carries_no_spans() {
        let (server, partitions) = setup(4, 2);
        let report = MpCrawler::new(server, LatencyModel::Zero, CrawlConfig::ajax())
            .with_proc_lines(2)
            .crawl(&partitions);
        assert!(report.spans.is_empty());
        assert!(report.partitions.iter().all(|p| p.spans.is_empty()));
    }

    #[test]
    fn resumed_crawl_reproduces_uninterrupted_site_model() {
        use crate::checkpoint::{config_fingerprint, Checkpointer};
        use crate::model::SiteModel;

        let (server, partitions) = setup(12, 3);
        let config = CrawlConfig::ajax().with_checkpoint_every(2);
        let build = || {
            MpCrawler::new(
                Arc::clone(&server) as Arc<dyn Server>,
                LatencyModel::thesis_default(5),
                config.clone(),
            )
            .with_proc_lines(2)
        };
        let site = |models: Vec<AppModel>| SiteModel {
            pages: models,
            ..SiteModel::default()
        };

        // The uninterrupted reference run (no checkpointing at all).
        let reference = site(build().crawl(&partitions).into_models());

        // An "interrupted" run: only part of the work completes before the
        // process dies, but what completed was durably checkpointed.
        let mut dir = std::env::temp_dir();
        dir.push(format!("ajax_resume_sig_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let fingerprint = config_fingerprint(&config, &["sig-test"]);
        let ckpt =
            Arc::new(Checkpointer::fresh(&dir, config.checkpoint_every, fingerprint).unwrap());
        build()
            .with_checkpointing(Arc::clone(&ckpt), std::collections::HashMap::new())
            .crawl(&partitions[..2]);
        ckpt.flush().unwrap();
        drop(ckpt);

        // A fresh "process" resumes from the journal and finishes the crawl.
        let (ckpt, state) =
            Checkpointer::resume(&dir, config.checkpoint_every, fingerprint).unwrap();
        assert!(ckpt.stats().resumed);
        assert!(ckpt.stats().pages_restored > 0);
        let resumed = site(
            build()
                .with_checkpointing(Arc::new(ckpt), state.pages)
                .crawl(&partitions)
                .into_models(),
        );

        assert_eq!(
            resumed.graph_signature(),
            reference.graph_signature(),
            "resumed crawl must reproduce the uninterrupted site graph"
        );
        assert_eq!(resumed.pages, reference.pages, "models bit-equal");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpointed_crawl_output_is_unchanged() {
        use crate::checkpoint::{config_fingerprint, Checkpointer};

        let (server, partitions) = setup(8, 2);
        let config = CrawlConfig::ajax().with_checkpoint_every(1);
        let run = |ckpt: Option<Arc<Checkpointer>>| {
            let mut mp = MpCrawler::new(
                Arc::clone(&server) as Arc<dyn Server>,
                LatencyModel::Fixed(1_000),
                config.clone(),
            )
            .with_proc_lines(2);
            if let Some(c) = ckpt {
                mp = mp.with_checkpointing(c, std::collections::HashMap::new());
            }
            mp.crawl(&partitions).into_models()
        };
        let mut dir = std::env::temp_dir();
        dir.push(format!("ajax_ckpt_noop_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let ckpt =
            Arc::new(Checkpointer::fresh(&dir, 1, config_fingerprint(&config, &[])).unwrap());
        let with = run(Some(Arc::clone(&ckpt)));
        let stats = ckpt.flush().unwrap();
        assert!(stats.writes >= 8, "every page checkpointed: {stats:?}");
        let without = run(None);
        assert_eq!(with, without, "checkpointing must not perturb the crawl");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn aggregate_stats_sum_partitions() {
        let (server, partitions) = setup(10, 5);
        let mp = MpCrawler::new(server, LatencyModel::Fixed(1_000), CrawlConfig::ajax())
            .with_proc_lines(2);
        let report = mp.crawl(&partitions);
        let sum: u64 = report.partitions.iter().map(|p| p.stats.states).sum();
        assert_eq!(report.aggregate.states, sum);
        assert!(report.aggregate.states >= 10);
    }

    #[test]
    fn aggregate_sums_static_analysis_counters() {
        let (server, partitions) = setup(10, 5);
        let mp = MpCrawler::new(server, LatencyModel::Fixed(1_000), CrawlConfig::ajax())
            .with_proc_lines(2);
        let report = mp.crawl(&partitions);
        let pruned: u64 = report
            .partitions
            .iter()
            .map(|p| p.stats.pruned_events)
            .sum();
        assert_eq!(report.aggregate.pruned_events, pruned);
        // Every vidshare watch page carries the pure `highlightTitle`
        // mouseover, so each partition contributes pruned events.
        assert!(report.partitions.iter().all(|p| p.stats.pruned_events > 0));
        let mismatches: u64 = report
            .partitions
            .iter()
            .map(|p| p.stats.prune_mismatches)
            .sum();
        assert_eq!(report.aggregate.prune_mismatches, mismatches);
        assert_eq!(mismatches, 0, "non-verify crawls never observe mismatches");
        let errors: u64 = report
            .partitions
            .iter()
            .map(|p| p.stats.script_errors)
            .sum();
        assert_eq!(report.aggregate.script_errors, errors);
        // The equivalence-pruning counters aggregate the same way (all zero
        // here: `CrawlConfig::ajax()` leaves the heuristic off).
        let equiv: u64 = report
            .partitions
            .iter()
            .map(|p| p.stats.equiv_pruned_events)
            .sum();
        assert_eq!(report.aggregate.equiv_pruned_events, equiv);
        let commute: u64 = report
            .partitions
            .iter()
            .map(|p| p.stats.commute_pruned_events)
            .sum();
        assert_eq!(report.aggregate.commute_pruned_events, commute);
        let equiv_mismatches: u64 = report
            .partitions
            .iter()
            .map(|p| p.stats.equiv_mismatches)
            .sum();
        assert_eq!(report.aggregate.equiv_mismatches, equiv_mismatches);
        assert_eq!(equiv, 0, "equiv pruning is opt-in");
    }

    #[test]
    fn mp_crawl_with_equiv_prune_aggregates_nonzero_counters() {
        let (server, partitions) = setup(10, 5);
        let mp = MpCrawler::new(
            server,
            LatencyModel::Fixed(1_000),
            CrawlConfig::ajax().with_equiv_prune(),
        )
        .with_proc_lines(2);
        let report = mp.crawl(&partitions);
        let equiv: u64 = report
            .partitions
            .iter()
            .map(|p| p.stats.equiv_pruned_events)
            .sum();
        assert_eq!(report.aggregate.equiv_pruned_events, equiv);
        let commute: u64 = report
            .partitions
            .iter()
            .map(|p| p.stats.commute_pruned_events)
            .sum();
        assert_eq!(report.aggregate.commute_pruned_events, commute);
    }
}
