//! The parallel crawler (thesis ch. 6): `MpCrawler` is the `MPAjaxCrawler` —
//! it runs `proc_lines` concurrent "process lines", each serially consuming
//! URL partitions with its own independent `SimpleAjaxCrawler` (here: a
//! [`Crawler`] with its own network client). No communication happens
//! between lines; the hyperlink structure was already extracted by the
//! precrawling phase, which is exactly what makes this embarrassingly
//! parallel (§6.1).
//!
//! Two time axes:
//!
//! * **real**: partitions are crawled on OS threads (wall-clock parallelism);
//! * **virtual**: each partition's CPU/network trace is replayed through
//!   `ajax_net::sched::simulate` over `proc_lines` lines and `cores` CPU
//!   cores, yielding the deterministic makespan reported by the Table 7.3 /
//!   Fig 7.8 experiments.

use crate::crawler::{CrawlConfig, CrawlError, Crawler, PageStats};
use crate::model::AppModel;
use crate::partition::Partition;
use ajax_net::fault::FaultPlan;
use ajax_net::sched::{simulate, Segment, Task};
use ajax_net::{LatencyModel, Micros, Server, Url};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A page the partition ultimately gave up on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageFailure {
    pub url: String,
    /// The error of the *last* crawl attempt.
    pub error: CrawlError,
    /// Page-level crawl attempts (re-enqueue passes), not fetch attempts.
    pub attempts: u32,
    /// True when the page kept failing transiently and was quarantined after
    /// `quarantine_after` attempts — a poison URL the crawler stopped
    /// feeding. False for permanent failures (e.g. 404), abandoned at once.
    pub quarantined: bool,
}

/// Result of crawling one partition.
#[derive(Debug, Clone)]
pub struct PartitionResult {
    pub id: usize,
    /// Models in partition URL order (stable regardless of re-crawl passes).
    pub models: Vec<AppModel>,
    /// Aggregate stats over the partition's pages.
    pub stats: PageStats,
    /// Concatenated CPU/network trace of the partition (one serial
    /// `SimpleAjaxCrawler` run), including time burned on failed attempts.
    pub trace: Task,
    /// Pages that failed for good; the line continues past failures.
    pub failures: Vec<PageFailure>,
    /// Page-level re-crawl attempts beyond the first (end-of-partition
    /// re-enqueues of transiently-failed pages).
    pub page_retries: u64,
    /// Pages that failed at least once but succeeded on a later pass.
    pub recovered_pages: u64,
}

/// Result of a full parallel crawl.
#[derive(Debug, Clone)]
pub struct MpReport {
    /// Per-partition results, ordered by partition id.
    pub partitions: Vec<PartitionResult>,
    /// Aggregate stats over all pages.
    pub aggregate: PageStats,
    /// Virtual wall-clock time with `proc_lines` lines on `cores` cores.
    pub virtual_makespan: Micros,
    /// Virtual time a single line would need (serial execution).
    pub virtual_serial: Micros,
    /// Page-level re-crawl attempts across all partitions.
    pub page_retries: u64,
    /// Pages recovered by re-crawl passes across all partitions.
    pub recovered_pages: u64,
    /// Poison URLs quarantined after `quarantine_after` failing passes.
    pub quarantined_pages: u64,
    /// Pages lost for good (quarantined + permanent failures).
    pub failed_pages: u64,
}

impl MpReport {
    /// All application models in partition order.
    pub fn into_models(self) -> Vec<AppModel> {
        self.partitions.into_iter().flat_map(|p| p.models).collect()
    }

    /// Parallel speedup in virtual time.
    pub fn speedup(&self) -> f64 {
        if self.virtual_makespan == 0 {
            1.0
        } else {
            self.virtual_serial as f64 / self.virtual_makespan as f64
        }
    }
}

/// The multi-process-line crawler.
pub struct MpCrawler {
    server: Arc<dyn Server>,
    latency: LatencyModel,
    config: CrawlConfig,
    /// `MP_CRAWLER_NUM_OF_PROC_LINES`.
    pub proc_lines: usize,
    /// CPU cores of the (virtual) machine the lines share.
    pub cores: usize,
    /// Deterministic fault plan shared by every line's client (each line
    /// keeps its own attempt counters, so decisions stay schedule-independent).
    pub fault_plan: Option<FaultPlan>,
    /// Page-level crawl attempts before a transiently-failing URL is
    /// quarantined (bounds the number of end-of-partition re-crawl passes).
    pub quarantine_after: u32,
}

impl MpCrawler {
    /// Creates a parallel crawler. The thesis machine was a dual-core Xeon
    /// running 4 process lines; those are the defaults.
    pub fn new(server: Arc<dyn Server>, latency: LatencyModel, config: CrawlConfig) -> Self {
        Self {
            server,
            latency,
            config,
            proc_lines: 4,
            cores: 2,
            fault_plan: None,
            quarantine_after: 3,
        }
    }

    /// Sets the number of process lines.
    pub fn with_proc_lines(mut self, proc_lines: usize) -> Self {
        self.proc_lines = proc_lines.max(1);
        self
    }

    /// Sets the core count of the machine model.
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores.max(1);
        self
    }

    /// Attaches a deterministic fault plan (every line gets a copy).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Sets the quarantine threshold (page-level attempts, min 1).
    pub fn with_quarantine_after(mut self, attempts: u32) -> Self {
        self.quarantine_after = attempts.max(1);
        self
    }

    /// Crawls one partition serially with a fresh crawler (fresh network
    /// client ⇒ per-partition determinism independent of thread scheduling).
    ///
    /// Failure handling: a page whose GET fails *transiently* (timeout, drop,
    /// 5xx exhaustion) is re-enqueued at the end of the partition and retried
    /// on a later pass; after `quarantine_after` failing passes it is
    /// quarantined. Permanent failures (e.g. 404) are abandoned immediately.
    fn crawl_partition(&self, partition: &Partition) -> PartitionResult {
        let mut crawler = Crawler::new(
            Arc::clone(&self.server),
            self.latency.clone(),
            self.config.clone(),
        );
        if let Some(plan) = &self.fault_plan {
            crawler = crawler.with_fault_plan(plan.clone());
        }
        let mut result = PartitionResult {
            id: partition.id,
            models: Vec::with_capacity(partition.urls.len()),
            stats: PageStats::default(),
            trace: Task::default(),
            failures: Vec::new(),
            page_retries: 0,
            recovered_pages: 0,
        };
        let n = partition.urls.len();
        let mut models: Vec<Option<AppModel>> = (0..n).map(|_| None).collect();
        let mut attempts: Vec<u32> = vec![0; n];
        // (url index, last error, quarantined) of pages given up on.
        let mut failed: Vec<(usize, CrawlError, bool)> = Vec::new();
        let mut segments: Vec<Segment> = Vec::new();

        let mut pending: Vec<usize> = (0..n).collect();
        while !pending.is_empty() {
            let mut next_pass: Vec<usize> = Vec::new();
            for &i in &pending {
                attempts[i] += 1;
                let before = crawler.net().now();
                match crawler.crawl_page(&Url::parse(&partition.urls[i])) {
                    Ok(page) => {
                        if attempts[i] > 1 {
                            result.recovered_pages += 1;
                        }
                        result.stats.merge(&page.stats);
                        segments.extend(page.trace.segments.iter().copied());
                        models[i] = Some(page.model);
                    }
                    Err(e) => {
                        // The burned virtual time (network + backoff of the
                        // failed attempts) still occupies the process line.
                        let burned = crawler.net().now() - before;
                        if burned > 0 {
                            segments.push(Segment::Net(burned));
                        }
                        if e.is_transient() && attempts[i] < self.quarantine_after {
                            result.page_retries += 1;
                            next_pass.push(i);
                        } else {
                            let quarantined = e.is_transient();
                            failed.push((i, e, quarantined));
                        }
                    }
                }
            }
            pending = next_pass;
        }

        // Emit models and failures in partition URL order: the index layout
        // must not depend on how many re-crawl passes happened.
        result.models = models.into_iter().flatten().collect();
        failed.sort_by_key(|(i, _, _)| *i);
        result.failures = failed
            .into_iter()
            .map(|(i, error, quarantined)| PageFailure {
                url: partition.urls[i].clone(),
                error,
                attempts: attempts[i],
                quarantined,
            })
            .collect();
        result.trace = Task::new(segments);
        result
    }

    /// Crawls all partitions over `proc_lines` OS threads (each line pulls
    /// the next unprocessed partition, exactly like `getPartitionID()`), and
    /// computes the virtual makespan of that execution.
    pub fn crawl(&self, partitions: &[Partition]) -> MpReport {
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<PartitionResult>> = Mutex::new(Vec::with_capacity(partitions.len()));

        std::thread::scope(|scope| {
            for _ in 0..self.proc_lines.max(1) {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(partition) = partitions.get(idx) else {
                        break;
                    };
                    let result = self.crawl_partition(partition);
                    results.lock().expect("no poisoned lock").push(result);
                });
            }
        });

        let mut partitions_done = results.into_inner().expect("threads joined");
        partitions_done.sort_by_key(|p| p.id);

        let mut aggregate = PageStats::default();
        let mut page_retries = 0u64;
        let mut recovered_pages = 0u64;
        let mut quarantined_pages = 0u64;
        let mut failed_pages = 0u64;
        for p in &partitions_done {
            aggregate.merge(&p.stats);
            page_retries += p.page_retries;
            recovered_pages += p.recovered_pages;
            quarantined_pages += p.failures.iter().filter(|f| f.quarantined).count() as u64;
            failed_pages += p.failures.len() as u64;
        }
        let tasks: Vec<Task> = partitions_done.iter().map(|p| p.trace.clone()).collect();
        let report = simulate(&tasks, self.proc_lines, self.cores);

        MpReport {
            partitions: partitions_done,
            aggregate,
            virtual_makespan: report.makespan,
            virtual_serial: report.serial_time,
            page_retries,
            recovered_pages,
            quarantined_pages,
            failed_pages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition_urls;
    use ajax_webgen::{VidShareServer, VidShareSpec};

    fn setup(n_videos: u32, partition_size: usize) -> (Arc<VidShareServer>, Vec<Partition>) {
        let spec = VidShareSpec::small(n_videos);
        let urls: Vec<String> = (0..n_videos).map(|v| spec.watch_url(v)).collect();
        let server = Arc::new(VidShareServer::new(spec));
        let partitions = partition_urls(&urls, partition_size);
        (server, partitions)
    }

    #[test]
    fn parallel_crawl_covers_all_pages() {
        let (server, partitions) = setup(24, 6);
        let mp = MpCrawler::new(server, LatencyModel::Fixed(2_000), CrawlConfig::ajax())
            .with_proc_lines(4)
            .with_cores(2);
        let report = mp.crawl(&partitions);
        let models = report.into_models();
        assert_eq!(models.len(), 24);
        let urls: std::collections::HashSet<_> = models.iter().map(|m| &m.url).collect();
        assert_eq!(urls.len(), 24, "every page crawled exactly once");
    }

    #[test]
    fn parallel_matches_serial_models() {
        let (server, partitions) = setup(12, 3);
        let mp = |lines: usize| {
            MpCrawler::new(
                Arc::clone(&server) as Arc<dyn Server>,
                LatencyModel::thesis_default(3),
                CrawlConfig::ajax(),
            )
            .with_proc_lines(lines)
        };
        let serial = mp(1).crawl(&partitions);
        let parallel = mp(4).crawl(&partitions);
        let serial_models = serial.into_models();
        let parallel_models = parallel.into_models();
        assert_eq!(
            serial_models, parallel_models,
            "parallelism must not change results"
        );
    }

    #[test]
    fn virtual_makespan_shrinks_with_lines() {
        let (server, partitions) = setup(16, 2);
        let run = |lines: usize| {
            MpCrawler::new(
                Arc::clone(&server) as Arc<dyn Server>,
                LatencyModel::thesis_default(1),
                CrawlConfig::ajax(),
            )
            .with_proc_lines(lines)
            .with_cores(2)
            .crawl(&partitions)
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one.virtual_serial, four.virtual_serial);
        assert!(
            four.virtual_makespan < one.virtual_makespan,
            "4 lines ({}) must beat 1 line ({})",
            four.virtual_makespan,
            one.virtual_makespan
        );
        assert!(four.speedup() > 1.5, "speedup {}", four.speedup());
    }

    #[test]
    fn failures_recorded_not_fatal() {
        let (server, _) = setup(5, 2);
        let partitions = vec![Partition {
            id: 1,
            urls: vec![
                "http://vidshare.example/watch?v=1".into(),
                "http://vidshare.example/watch?v=777".into(), // 404
                "http://vidshare.example/watch?v=2".into(),
            ],
        }];
        let mp = MpCrawler::new(server, LatencyModel::Zero, CrawlConfig::ajax());
        let report = mp.crawl(&partitions);
        let failure = &report.partitions[0].failures[0];
        assert_eq!(report.partitions[0].failures.len(), 1);
        assert_eq!(report.partitions[0].models.len(), 2);
        // A 404 is permanent: abandoned on the first pass, not quarantined.
        assert!(matches!(
            failure.error,
            CrawlError::Http { status: 404, .. }
        ));
        assert!(!failure.quarantined);
        assert_eq!(failure.attempts, 1);
        assert_eq!(report.failed_pages, 1);
        assert_eq!(report.quarantined_pages, 0);
        assert_eq!(report.page_retries, 0);
    }

    #[test]
    fn permanently_dead_urls_quarantined_after_k_attempts() {
        use ajax_net::fault::{Fault, FaultRule};
        let (server, _) = setup(6, 3);
        let partitions = vec![Partition {
            id: 0,
            urls: vec![
                "http://vidshare.example/watch?v=0".into(),
                "http://vidshare.example/watch?v=1".into(),
                "http://vidshare.example/watch?v=2".into(),
            ],
        }];
        // v=1 is permanently dead (every attempt 503); the rest are clean.
        let plan = FaultPlan::new(7).with_rule(FaultRule::matching(
            "v=1",
            1.0,
            Fault::Permanent { status: 503 },
        ));
        let mp = MpCrawler::new(server, LatencyModel::Zero, CrawlConfig::ajax())
            .with_proc_lines(1)
            .with_fault_plan(plan)
            .with_quarantine_after(3);
        let report = mp.crawl(&partitions);
        let partition = &report.partitions[0];
        assert_eq!(partition.models.len(), 2, "healthy pages crawled");
        assert_eq!(partition.failures.len(), 1);
        let failure = &partition.failures[0];
        assert!(failure.url.contains("v=1"));
        assert!(failure.quarantined, "5xx-forever is quarantined, not 404");
        assert_eq!(failure.attempts, 3, "exactly quarantine_after passes");
        assert!(matches!(
            failure.error,
            CrawlError::Exhausted { status: 503, .. }
        ));
        assert_eq!(report.quarantined_pages, 1);
        assert_eq!(report.page_retries, 2, "re-enqueued twice before giving up");
    }

    #[test]
    fn transient_pages_recovered_by_reenqueue() {
        use ajax_net::fault::{Fault, FaultRule};
        let (server, _) = setup(4, 4);
        let partitions = vec![Partition {
            id: 0,
            urls: (0..4)
                .map(|v| format!("http://vidshare.example/watch?v={v}"))
                .collect(),
        }];
        // Every watch page fails its first 4 fetch attempts with 503 — more
        // than one crawl attempt (3 fetches) absorbs, so page-level
        // re-enqueue must kick in — then succeeds forever.
        let plan = FaultPlan::new(3).with_rule(FaultRule::matching(
            "/watch",
            1.0,
            Fault::Transient {
                status: 503,
                fail_attempts: 4,
            },
        ));
        let mp = MpCrawler::new(server, LatencyModel::Zero, CrawlConfig::ajax())
            .with_proc_lines(1)
            .with_fault_plan(plan);
        let report = mp.crawl(&partitions);
        let partition = &report.partitions[0];
        assert_eq!(partition.failures.len(), 0, "zero lost pages");
        assert_eq!(partition.models.len(), 4);
        assert_eq!(partition.recovered_pages, 4, "all recovered on pass 2");
        assert!(report.page_retries >= 4);
        // Models come out in partition URL order despite the extra pass.
        let urls: Vec<&str> = partition.models.iter().map(|m| m.url.as_str()).collect();
        assert_eq!(
            urls,
            partitions[0]
                .urls
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn aggregate_stats_sum_partitions() {
        let (server, partitions) = setup(10, 5);
        let mp = MpCrawler::new(server, LatencyModel::Fixed(1_000), CrawlConfig::ajax())
            .with_proc_lines(2);
        let report = mp.crawl(&partitions);
        let sum: u64 = report.partitions.iter().map(|p| p.stats.states).sum();
        assert_eq!(report.aggregate.states, sum);
        assert!(report.aggregate.states >= 10);
    }
}
