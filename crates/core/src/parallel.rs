//! The parallel crawler (thesis ch. 6): `MpCrawler` is the `MPAjaxCrawler` —
//! it runs `proc_lines` concurrent "process lines", each serially consuming
//! URL partitions with its own independent `SimpleAjaxCrawler` (here: a
//! [`Crawler`] with its own network client). No communication happens
//! between lines; the hyperlink structure was already extracted by the
//! precrawling phase, which is exactly what makes this embarrassingly
//! parallel (§6.1).
//!
//! Two time axes:
//!
//! * **real**: partitions are crawled on OS threads (wall-clock parallelism);
//! * **virtual**: each partition's CPU/network trace is replayed through
//!   `ajax_net::sched::simulate` over `proc_lines` lines and `cores` CPU
//!   cores, yielding the deterministic makespan reported by the Table 7.3 /
//!   Fig 7.8 experiments.

use crate::crawler::{CrawlConfig, CrawlError, Crawler, PageStats};
use crate::model::AppModel;
use crate::partition::Partition;
use ajax_net::sched::{simulate, Segment, Task};
use ajax_net::{LatencyModel, Micros, Server, Url};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Result of crawling one partition.
#[derive(Debug, Clone)]
pub struct PartitionResult {
    pub id: usize,
    pub models: Vec<AppModel>,
    /// Aggregate stats over the partition's pages.
    pub stats: PageStats,
    /// Concatenated CPU/network trace of the partition (one serial
    /// `SimpleAjaxCrawler` run).
    pub trace: Task,
    /// Pages that failed (URL + error); the line continues past failures.
    pub failures: Vec<(String, CrawlError)>,
}

/// Result of a full parallel crawl.
#[derive(Debug, Clone)]
pub struct MpReport {
    /// Per-partition results, ordered by partition id.
    pub partitions: Vec<PartitionResult>,
    /// Aggregate stats over all pages.
    pub aggregate: PageStats,
    /// Virtual wall-clock time with `proc_lines` lines on `cores` cores.
    pub virtual_makespan: Micros,
    /// Virtual time a single line would need (serial execution).
    pub virtual_serial: Micros,
}

impl MpReport {
    /// All application models in partition order.
    pub fn into_models(self) -> Vec<AppModel> {
        self.partitions.into_iter().flat_map(|p| p.models).collect()
    }

    /// Parallel speedup in virtual time.
    pub fn speedup(&self) -> f64 {
        if self.virtual_makespan == 0 {
            1.0
        } else {
            self.virtual_serial as f64 / self.virtual_makespan as f64
        }
    }
}

/// The multi-process-line crawler.
pub struct MpCrawler {
    server: Arc<dyn Server>,
    latency: LatencyModel,
    config: CrawlConfig,
    /// `MP_CRAWLER_NUM_OF_PROC_LINES`.
    pub proc_lines: usize,
    /// CPU cores of the (virtual) machine the lines share.
    pub cores: usize,
}

impl MpCrawler {
    /// Creates a parallel crawler. The thesis machine was a dual-core Xeon
    /// running 4 process lines; those are the defaults.
    pub fn new(server: Arc<dyn Server>, latency: LatencyModel, config: CrawlConfig) -> Self {
        Self {
            server,
            latency,
            config,
            proc_lines: 4,
            cores: 2,
        }
    }

    /// Sets the number of process lines.
    pub fn with_proc_lines(mut self, proc_lines: usize) -> Self {
        self.proc_lines = proc_lines.max(1);
        self
    }

    /// Sets the core count of the machine model.
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores.max(1);
        self
    }

    /// Crawls one partition serially with a fresh crawler (fresh network
    /// client ⇒ per-partition determinism independent of thread scheduling).
    fn crawl_partition(&self, partition: &Partition) -> PartitionResult {
        let mut crawler = Crawler::new(
            Arc::clone(&self.server),
            self.latency.clone(),
            self.config.clone(),
        );
        let mut result = PartitionResult {
            id: partition.id,
            models: Vec::with_capacity(partition.urls.len()),
            stats: PageStats::default(),
            trace: Task::default(),
            failures: Vec::new(),
        };
        let mut segments: Vec<Segment> = Vec::new();
        for url in &partition.urls {
            match crawler.crawl_page(&Url::parse(url)) {
                Ok(page) => {
                    result.stats.merge(&page.stats);
                    segments.extend(page.trace.segments.iter().copied());
                    result.models.push(page.model);
                }
                Err(e) => result.failures.push((url.clone(), e)),
            }
        }
        result.trace = Task::new(segments);
        result
    }

    /// Crawls all partitions over `proc_lines` OS threads (each line pulls
    /// the next unprocessed partition, exactly like `getPartitionID()`), and
    /// computes the virtual makespan of that execution.
    pub fn crawl(&self, partitions: &[Partition]) -> MpReport {
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<PartitionResult>> = Mutex::new(Vec::with_capacity(partitions.len()));

        std::thread::scope(|scope| {
            for _ in 0..self.proc_lines.max(1) {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(partition) = partitions.get(idx) else {
                        break;
                    };
                    let result = self.crawl_partition(partition);
                    results.lock().expect("no poisoned lock").push(result);
                });
            }
        });

        let mut partitions_done = results.into_inner().expect("threads joined");
        partitions_done.sort_by_key(|p| p.id);

        let mut aggregate = PageStats::default();
        for p in &partitions_done {
            aggregate.merge(&p.stats);
        }
        let tasks: Vec<Task> = partitions_done.iter().map(|p| p.trace.clone()).collect();
        let report = simulate(&tasks, self.proc_lines, self.cores);

        MpReport {
            partitions: partitions_done,
            aggregate,
            virtual_makespan: report.makespan,
            virtual_serial: report.serial_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition_urls;
    use ajax_webgen::{VidShareServer, VidShareSpec};

    fn setup(n_videos: u32, partition_size: usize) -> (Arc<VidShareServer>, Vec<Partition>) {
        let spec = VidShareSpec::small(n_videos);
        let urls: Vec<String> = (0..n_videos).map(|v| spec.watch_url(v)).collect();
        let server = Arc::new(VidShareServer::new(spec));
        let partitions = partition_urls(&urls, partition_size);
        (server, partitions)
    }

    #[test]
    fn parallel_crawl_covers_all_pages() {
        let (server, partitions) = setup(24, 6);
        let mp = MpCrawler::new(server, LatencyModel::Fixed(2_000), CrawlConfig::ajax())
            .with_proc_lines(4)
            .with_cores(2);
        let report = mp.crawl(&partitions);
        let models = report.into_models();
        assert_eq!(models.len(), 24);
        let urls: std::collections::HashSet<_> = models.iter().map(|m| &m.url).collect();
        assert_eq!(urls.len(), 24, "every page crawled exactly once");
    }

    #[test]
    fn parallel_matches_serial_models() {
        let (server, partitions) = setup(12, 3);
        let mp = |lines: usize| {
            MpCrawler::new(
                Arc::clone(&server) as Arc<dyn Server>,
                LatencyModel::thesis_default(3),
                CrawlConfig::ajax(),
            )
            .with_proc_lines(lines)
        };
        let serial = mp(1).crawl(&partitions);
        let parallel = mp(4).crawl(&partitions);
        let serial_models = serial.into_models();
        let parallel_models = parallel.into_models();
        assert_eq!(
            serial_models, parallel_models,
            "parallelism must not change results"
        );
    }

    #[test]
    fn virtual_makespan_shrinks_with_lines() {
        let (server, partitions) = setup(16, 2);
        let run = |lines: usize| {
            MpCrawler::new(
                Arc::clone(&server) as Arc<dyn Server>,
                LatencyModel::thesis_default(1),
                CrawlConfig::ajax(),
            )
            .with_proc_lines(lines)
            .with_cores(2)
            .crawl(&partitions)
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one.virtual_serial, four.virtual_serial);
        assert!(
            four.virtual_makespan < one.virtual_makespan,
            "4 lines ({}) must beat 1 line ({})",
            four.virtual_makespan,
            one.virtual_makespan
        );
        assert!(four.speedup() > 1.5, "speedup {}", four.speedup());
    }

    #[test]
    fn failures_recorded_not_fatal() {
        let (server, _) = setup(5, 2);
        let partitions = vec![Partition {
            id: 1,
            urls: vec![
                "http://vidshare.example/watch?v=1".into(),
                "http://vidshare.example/watch?v=777".into(), // 404
                "http://vidshare.example/watch?v=2".into(),
            ],
        }];
        let mp = MpCrawler::new(server, LatencyModel::Zero, CrawlConfig::ajax());
        let report = mp.crawl(&partitions);
        assert_eq!(report.partitions[0].failures.len(), 1);
        assert_eq!(report.partitions[0].models.len(), 2);
    }

    #[test]
    fn aggregate_stats_sum_partitions() {
        let (server, partitions) = setup(10, 5);
        let mp = MpCrawler::new(server, LatencyModel::Fixed(1_000), CrawlConfig::ajax())
            .with_proc_lines(2);
        let report = mp.crawl(&partitions);
        let sum: u64 = report.partitions.iter().map(|p| p.stats.states).sum();
        assert_eq!(report.aggregate.states, sum);
        assert!(report.aggregate.states >= 10);
    }
}
