//! Static page analysis: the JavaScript invocation graph of a fetched page
//! (thesis §4.1), assembled from all its `<script>` blocks, together with
//! the page's event bindings — everything Tables 4.1–4.3 tabulate, derived
//! before any event is fired — plus the interprocedural effect summaries
//! and diagnostics the static crawl planner consumes (`crawler.rs`,
//! `docs/static-analysis.md`).

use ajax_dom::events::{collect_event_bindings, EventBinding};
use ajax_dom::{parse_document, EventType};
use ajax_js::callgraph::InvocationGraph;
use ajax_js::effects::{graph_diagnostics, EffectAnalysis, EffectSummary};
use std::collections::{BTreeMap, BTreeSet};

// Downstream layers (engine CLI, bench) consume diagnostics through this
// module; re-export the catalogue so they need not depend on `ajax-js`.
pub use ajax_js::effects::{Diagnostic, Lint, Severity};

/// The cached effect verdict for one handler snippet, computed once at
/// [`analyze_page`] time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BindingVerdict {
    /// Transitive effects of running the snippet at top level.
    pub summary: EffectSummary,
    /// False when the snippet failed to parse (verdicts are then
    /// worst-case: impure, no provable network reach).
    pub parsed: bool,
}

impl BindingVerdict {
    /// True when firing the handler provably cannot change application
    /// state — the static-prune criterion.
    pub fn is_pure(&self) -> bool {
        self.parsed && self.summary.is_pure()
    }

    /// True when the handler can cause server traffic.
    pub fn reaches_network(&self) -> bool {
        self.parsed && self.summary.reaches_network()
    }
}

/// Result of statically analyzing a page.
#[derive(Debug, Clone)]
pub struct PageAnalysis {
    /// The merged invocation graph of all scripts.
    pub graph: InvocationGraph,
    /// All event bindings in the initial DOM.
    pub bindings: Vec<EventBinding>,
    /// Scripts that failed to parse (analysis is best-effort).
    pub script_errors: usize,
    /// Per-function effect summaries (fixpoint over the graph).
    pub effects: EffectAnalysis,
    /// Every `id` attribute present in the initial document.
    pub dom_ids: BTreeSet<String>,
    /// Effect verdicts per distinct handler snippet, keyed by source text.
    verdicts: BTreeMap<String, BindingVerdict>,
}

impl PageAnalysis {
    /// True when `binding` can cause server traffic (its handler calls,
    /// directly or transitively, a hot node). O(1): verdicts are computed
    /// once at analysis time, not re-derived per query.
    pub fn binding_reaches_network(&self, binding: &EventBinding) -> bool {
        self.verdicts
            .get(&binding.code)
            .is_some_and(BindingVerdict::reaches_network)
    }

    /// The bindings that can cause server traffic — the events a
    /// network-conscious crawler would prioritize.
    pub fn network_bindings(&self) -> Vec<&EventBinding> {
        self.bindings
            .iter()
            .filter(|b| self.binding_reaches_network(b))
            .collect()
    }

    /// The cached verdict for a handler snippet seen in the initial DOM.
    pub fn verdict(&self, code: &str) -> Option<&BindingVerdict> {
        self.verdicts.get(code)
    }

    /// All snippet verdicts, keyed by handler source text.
    pub fn verdicts(&self) -> impl Iterator<Item = (&str, &BindingVerdict)> {
        self.verdicts.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Runs the diagnostics pass: graph-level lints (undefined calls,
    /// redefinitions, dynamic hot calls) plus page-level lints that need
    /// the document — parse failures, dead functions, DOM writes to ids
    /// absent from the initial document, stateless handlers, and handlers
    /// whose termination is unprovable. Sorted most severe first.
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for _ in 0..self.script_errors {
            out.push(Diagnostic::new(
                Lint::ScriptParseError,
                "script",
                "a <script> block failed to parse; analysis of it was skipped",
            ));
        }
        out.extend(graph_diagnostics(&self.graph, &self.effects));

        // Dead functions: unreachable from top-level code or any handler.
        let mut live: BTreeSet<String> = self.graph.top_level_calls.iter().cloned().collect();
        let mut frontier: Vec<String> = live.iter().cloned().collect();
        for code in self.verdicts.keys() {
            if let Ok(program) = ajax_js::parse_program(code) {
                let snippet = ajax_js::effects::local_effects_of_snippet(&program.body);
                for site in snippet.call_sites {
                    if live.insert(site.callee.clone()) {
                        frontier.push(site.callee);
                    }
                }
            }
        }
        while let Some(name) = frontier.pop() {
            if let Some(f) = self.graph.function(&name) {
                for callee in &f.calls {
                    if live.insert(callee.clone()) {
                        frontier.push(callee.clone());
                    }
                }
            }
        }
        for f in self.graph.functions() {
            if !live.contains(f.name.as_str()) {
                out.push(Diagnostic::new(
                    Lint::DeadFunction,
                    f.name.clone(),
                    "declared but unreachable from any handler or top-level call",
                ));
            }
        }

        // Constant DOM-write targets that do not exist in the document.
        for (name, sum) in self.effects.summaries() {
            for id in &sum.dom_write_ids {
                if !self.dom_ids.contains(id) {
                    out.push(Diagnostic::new(
                        Lint::DomWriteUnknownId,
                        name,
                        format!("writes to element id `{id}`, absent from the document"),
                    ));
                }
            }
        }

        // Per-snippet verdicts: stateless and possibly-non-terminating.
        for (code, verdict) in &self.verdicts {
            if verdict.is_pure() {
                out.push(Diagnostic::new(
                    Lint::StatelessHandler,
                    code.clone(),
                    "handler is provably stateless; the crawler can skip firing it",
                ));
            }
            if verdict.parsed && verdict.summary.may_not_terminate {
                out.push(Diagnostic::new(
                    Lint::NonTerminating,
                    code.clone(),
                    "handler reaches a loop or call cycle; termination is not provable",
                ));
            }
        }

        out.sort_by(|a, b| {
            b.severity()
                .cmp(&a.severity())
                .then_with(|| a.lint.code().cmp(b.lint.code()))
                .then_with(|| a.subject.cmp(&b.subject))
        });
        out
    }

    /// The highest severity present, if any diagnostic fired.
    pub fn max_severity(&self) -> Option<ajax_js::effects::Severity> {
        self.diagnostics().iter().map(|d| d.severity()).max()
    }
}

/// Analyzes a page's HTML statically.
pub fn analyze_page(html: &str) -> PageAnalysis {
    let doc = parse_document(html);
    let mut graph = InvocationGraph::default();
    let mut script_errors = 0;
    for src in doc.script_sources() {
        match InvocationGraph::from_source(&src) {
            Ok(g) => graph.merge(g),
            Err(_) => script_errors += 1,
        }
    }
    let bindings = collect_event_bindings(&doc, EventType::all());
    let dom_ids: BTreeSet<String> = doc
        .walk()
        .filter_map(|id| doc.attr(id, "id").map(str::to_string))
        .collect();
    let effects = EffectAnalysis::of(&graph);
    let mut verdicts = BTreeMap::new();
    for b in &bindings {
        verdicts.entry(b.code.clone()).or_insert_with(|| {
            match effects.snippet_summary_src(&b.code) {
                Ok(summary) => BindingVerdict {
                    summary,
                    parsed: true,
                },
                Err(_) => BindingVerdict::default(),
            }
        });
    }
    PageAnalysis {
        graph,
        bindings,
        script_errors,
        effects,
        dom_ids,
        verdicts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajax_js::effects::Severity;
    use ajax_net::server::{Request, Server};
    use ajax_webgen::{NewsShareServer, NewsSpec, VidShareServer, VidShareSpec};

    #[test]
    fn vidshare_static_analysis_matches_thesis_structure() {
        let server = VidShareServer::new(VidShareSpec::small(20));
        let spec = VidShareSpec::small(20);
        let video = (0..20)
            .find(|&v| ajax_webgen::video_meta(&spec, v).comment_pages >= 3)
            .unwrap();
        let html = server
            .handle(&Request::get(format!("/watch?v={video}").as_str()))
            .body;
        let analysis = analyze_page(&html);

        assert_eq!(analysis.script_errors, 0);
        // One hot node, like YouTube (Table 4.2's function A).
        assert_eq!(
            analysis.graph.hot_nodes(),
            vec!["getUrlXMLResponseAndFillDiv"]
        );
        // gotoPage/nextPage/prevPage reach it; trackers and loaders do not.
        let reach = analysis.graph.reaches_network();
        for f in ["gotoPage", "nextPage", "prevPage"] {
            assert!(reach.contains(f), "{f} must reach the network");
        }
        for f in ["urchinTracker", "showLoading", "initPage", "highlightTitle"] {
            assert!(!reach.contains(f), "{f} must not reach the network");
        }

        // Event classification: nav clicks are network events, the title
        // mouseover is not.
        let network: Vec<&str> = analysis
            .network_bindings()
            .iter()
            .map(|b| b.code.as_str())
            .collect();
        assert!(network.iter().all(|c| c.contains("Page")));
        assert!(network.len() >= 3, "next/prev/jumps: {network:?}");
        let mouseover = analysis
            .bindings
            .iter()
            .find(|b| b.event_type == ajax_dom::EventType::MouseOver)
            .expect("title hover binding");
        assert!(!analysis.binding_reaches_network(mouseover));
    }

    #[test]
    fn newsshare_has_two_hot_nodes() {
        let server = NewsShareServer::new(NewsSpec::small(10));
        let html = server.handle(&Request::get("/news?p=1")).body;
        let analysis = analyze_page(&html);
        assert_eq!(
            analysis.graph.hot_nodes(),
            vec!["fetchSection", "fetchStories"]
        );
        let reach = analysis.graph.reaches_network();
        assert!(reach.contains("loadSection"));
        assert!(reach.contains("moreStories"));
        assert!(!reach.contains("initNews"));
    }

    #[test]
    fn static_analysis_agrees_with_runtime_detection() {
        // The runtime hot-node registry (stack inspection during a crawl)
        // must be a subset of the statically reachable hot-node set, keyed
        // by the innermost frame at send() time.
        use crate::crawler::{CrawlConfig, Crawler};
        use ajax_net::{LatencyModel, Url};
        use std::sync::Arc;

        let spec = NewsSpec::small(10);
        let url = Url::parse(&spec.page_url(1));
        let server = Arc::new(NewsShareServer::new(spec));
        let html = server.handle(&Request::get("/news?p=1")).body;
        let static_hot: std::collections::BTreeSet<String> = analyze_page(&html)
            .graph
            .hot_nodes()
            .into_iter()
            .map(str::to_string)
            .collect();

        let mut crawler = Crawler::new(
            server as Arc<dyn ajax_net::Server>,
            LatencyModel::Zero,
            CrawlConfig::ajax().with_max_states(20),
        );
        let crawl = crawler.crawl_page(&url).unwrap();
        assert_eq!(crawl.stats.hot_nodes as usize, static_hot.len());
    }

    #[test]
    fn malformed_scripts_counted_not_fatal() {
        let analysis = analyze_page(
            "<script>function broken( {</script><script>function ok() { x.send(0); }</script>",
        );
        assert_eq!(analysis.script_errors, 1);
        assert_eq!(analysis.graph.hot_nodes(), vec!["ok"]);
        assert!(analysis
            .diagnostics()
            .iter()
            .any(|d| d.lint == Lint::ScriptParseError));
    }

    #[test]
    fn page_without_scripts() {
        let analysis = analyze_page("<p>plain old web</p>");
        assert!(analysis.graph.hot_nodes().is_empty());
        assert!(analysis.bindings.is_empty());
        assert!(analysis.diagnostics().is_empty());
        assert_eq!(analysis.max_severity(), None);
    }

    #[test]
    fn verdicts_cached_per_snippet() {
        let server = VidShareServer::new(VidShareSpec::small(20));
        let html = server.handle(&Request::get("/watch?v=0")).body;
        let analysis = analyze_page(&html);
        // The mouseover handler is pure; nav handlers are not.
        let hover = analysis.verdict("highlightTitle()").expect("hover verdict");
        assert!(hover.is_pure() && !hover.reaches_network());
        let next = analysis.verdict("nextPage()").expect("next verdict");
        assert!(!next.is_pure() && next.reaches_network());
        // Every binding has a verdict (onload included).
        for b in &analysis.bindings {
            assert!(
                analysis.verdict(&b.code).is_some(),
                "no verdict: {}",
                b.code
            );
        }
    }

    #[test]
    fn generated_sites_are_lint_clean_at_error_level() {
        let vid = VidShareServer::new(VidShareSpec::small(20));
        let news = NewsShareServer::new(NewsSpec::small(10));
        for html in [
            vid.handle(&Request::get("/watch?v=0")).body,
            news.handle(&Request::get("/news?p=1")).body,
        ] {
            let analysis = analyze_page(&html);
            let worst = analysis.max_severity();
            assert!(
                worst.is_none() || worst < Some(Severity::Error),
                "unexpected error diagnostics: {:?}",
                analysis.diagnostics()
            );
        }
    }

    #[test]
    fn vidshare_flags_stateless_hover_handler() {
        let server = VidShareServer::new(VidShareSpec::small(20));
        let html = server.handle(&Request::get("/watch?v=0")).body;
        let analysis = analyze_page(&html);
        let diags = analysis.diagnostics();
        assert!(
            diags
                .iter()
                .any(|d| d.lint == Lint::StatelessHandler && d.subject == "highlightTitle()"),
            "{diags:?}"
        );
        // The only "dead" function is prevPage: the initial DOM renders no
        // "previous" arrow (you start on comment page 1), so it is only
        // reachable from server-injected fragments — the static-analysis
        // blind spot docs/static-analysis.md calls out.
        let dead: Vec<&str> = diags
            .iter()
            .filter(|d| d.lint == Lint::DeadFunction)
            .map(|d| d.subject.as_str())
            .collect();
        assert_eq!(dead, vec!["prevPage"]);
    }

    #[test]
    fn dead_function_and_unknown_id_linted() {
        let analysis = analyze_page(
            "<script>
                function used() { document.getElementById('ghost').innerHTML = 'x'; }
                function orphan() { return 1; }
             </script>
             <div id=\"real\" onclick=\"used()\">go</div>",
        );
        let diags = analysis.diagnostics();
        assert!(diags
            .iter()
            .any(|d| d.lint == Lint::DeadFunction && d.subject == "orphan"));
        assert!(diags
            .iter()
            .any(|d| d.lint == Lint::DomWriteUnknownId && d.subject == "used"));
        assert_eq!(analysis.max_severity(), Some(Severity::Warning));
    }

    #[test]
    fn diagnostics_sorted_most_severe_first() {
        let analysis = analyze_page(
            "<script>function bad() { ghost(); }</script>
             <div onclick=\"bad()\">x</div>
             <div onmouseover=\"1 + 1\">y</div>",
        );
        let diags = analysis.diagnostics();
        assert!(diags.len() >= 2);
        for pair in diags.windows(2) {
            assert!(pair[0].severity() >= pair[1].severity());
        }
        assert_eq!(diags[0].severity(), Severity::Error);
    }
}
