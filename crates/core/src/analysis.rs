//! Static page analysis: the JavaScript invocation graph of a fetched page
//! (thesis §4.1), assembled from all its `<script>` blocks, together with
//! the page's event bindings — everything Tables 4.1–4.3 tabulate, derived
//! before any event is fired.

use ajax_dom::events::{collect_event_bindings, EventBinding};
use ajax_dom::{parse_document, EventType};
use ajax_js::callgraph::InvocationGraph;
use ajax_js::parse_program;

/// Result of statically analyzing a page.
#[derive(Debug, Clone)]
pub struct PageAnalysis {
    /// The merged invocation graph of all scripts.
    pub graph: InvocationGraph,
    /// All event bindings in the initial DOM.
    pub bindings: Vec<EventBinding>,
    /// Scripts that failed to parse (analysis is best-effort).
    pub script_errors: usize,
}

impl PageAnalysis {
    /// True when `binding` can cause server traffic (its handler calls,
    /// directly or transitively, a hot node).
    pub fn binding_reaches_network(&self, binding: &EventBinding) -> bool {
        let Ok(program) = parse_program(&binding.code) else {
            return false;
        };
        let snippet = InvocationGraph::from_program(&program);
        let reaching = self.graph.reaches_network();
        snippet
            .top_level_calls
            .iter()
            .any(|call| reaching.contains(call.as_str()))
    }

    /// The bindings that can cause server traffic — the events a
    /// network-conscious crawler would prioritize.
    pub fn network_bindings(&self) -> Vec<&EventBinding> {
        self.bindings
            .iter()
            .filter(|b| self.binding_reaches_network(b))
            .collect()
    }
}

/// Analyzes a page's HTML statically.
pub fn analyze_page(html: &str) -> PageAnalysis {
    let doc = parse_document(html);
    let mut graph = InvocationGraph::default();
    let mut script_errors = 0;
    for src in doc.script_sources() {
        match InvocationGraph::from_source(&src) {
            Ok(g) => graph.merge(g),
            Err(_) => script_errors += 1,
        }
    }
    let bindings = collect_event_bindings(&doc, EventType::all());
    PageAnalysis {
        graph,
        bindings,
        script_errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajax_net::server::{Request, Server};
    use ajax_webgen::{NewsShareServer, NewsSpec, VidShareServer, VidShareSpec};

    #[test]
    fn vidshare_static_analysis_matches_thesis_structure() {
        let server = VidShareServer::new(VidShareSpec::small(20));
        let spec = VidShareSpec::small(20);
        let video = (0..20)
            .find(|&v| ajax_webgen::video_meta(&spec, v).comment_pages >= 3)
            .unwrap();
        let html = server
            .handle(&Request::get(format!("/watch?v={video}").as_str()))
            .body;
        let analysis = analyze_page(&html);

        assert_eq!(analysis.script_errors, 0);
        // One hot node, like YouTube (Table 4.2's function A).
        assert_eq!(
            analysis.graph.hot_nodes(),
            vec!["getUrlXMLResponseAndFillDiv"]
        );
        // gotoPage/nextPage/prevPage reach it; trackers and loaders do not.
        let reach = analysis.graph.reaches_network();
        for f in ["gotoPage", "nextPage", "prevPage"] {
            assert!(reach.contains(f), "{f} must reach the network");
        }
        for f in ["urchinTracker", "showLoading", "initPage", "highlightTitle"] {
            assert!(!reach.contains(f), "{f} must not reach the network");
        }

        // Event classification: nav clicks are network events, the title
        // mouseover is not.
        let network: Vec<&str> = analysis
            .network_bindings()
            .iter()
            .map(|b| b.code.as_str())
            .collect();
        assert!(network.iter().all(|c| c.contains("Page")));
        assert!(network.len() >= 3, "next/prev/jumps: {network:?}");
        let mouseover = analysis
            .bindings
            .iter()
            .find(|b| b.event_type == ajax_dom::EventType::MouseOver)
            .expect("title hover binding");
        assert!(!analysis.binding_reaches_network(mouseover));
    }

    #[test]
    fn newsshare_has_two_hot_nodes() {
        let server = NewsShareServer::new(NewsSpec::small(10));
        let html = server.handle(&Request::get("/news?p=1")).body;
        let analysis = analyze_page(&html);
        assert_eq!(
            analysis.graph.hot_nodes(),
            vec!["fetchSection", "fetchStories"]
        );
        let reach = analysis.graph.reaches_network();
        assert!(reach.contains("loadSection"));
        assert!(reach.contains("moreStories"));
        assert!(!reach.contains("initNews"));
    }

    #[test]
    fn static_analysis_agrees_with_runtime_detection() {
        // The runtime hot-node registry (stack inspection during a crawl)
        // must be a subset of the statically reachable hot-node set, keyed
        // by the innermost frame at send() time.
        use crate::crawler::{CrawlConfig, Crawler};
        use ajax_net::{LatencyModel, Url};
        use std::sync::Arc;

        let spec = NewsSpec::small(10);
        let url = Url::parse(&spec.page_url(1));
        let server = Arc::new(NewsShareServer::new(spec));
        let html = server.handle(&Request::get("/news?p=1")).body;
        let static_hot: std::collections::BTreeSet<String> = analyze_page(&html)
            .graph
            .hot_nodes()
            .into_iter()
            .map(str::to_string)
            .collect();

        let mut crawler = Crawler::new(
            server as Arc<dyn ajax_net::Server>,
            LatencyModel::Zero,
            CrawlConfig::ajax().with_max_states(20),
        );
        let crawl = crawler.crawl_page(&url).unwrap();
        assert_eq!(crawl.stats.hot_nodes as usize, static_hot.len());
    }

    #[test]
    fn malformed_scripts_counted_not_fatal() {
        let analysis = analyze_page(
            "<script>function broken( {</script><script>function ok() { x.send(0); }</script>",
        );
        assert_eq!(analysis.script_errors, 1);
        assert_eq!(analysis.graph.hot_nodes(), vec!["ok"]);
    }

    #[test]
    fn page_without_scripts() {
        let analysis = analyze_page("<p>plain old web</p>");
        assert!(analysis.graph.hot_nodes().is_empty());
        assert!(analysis.bindings.is_empty());
    }
}
