//! Static page analysis: the JavaScript invocation graph of a fetched page
//! (thesis §4.1), assembled from all its `<script>` blocks, together with
//! the page's event bindings — everything Tables 4.1–4.3 tabulate, derived
//! before any event is fired — plus the interprocedural effect summaries
//! and diagnostics the static crawl planner consumes (`crawler.rs`,
//! `docs/static-analysis.md`).

use ajax_dom::events::{collect_event_bindings, EventBinding};
use ajax_dom::{parse_document, Document, EventType, NodeId};
use ajax_js::callgraph::InvocationGraph;
use ajax_js::effects::{graph_diagnostics, EffectAnalysis, EffectSummary};
use ajax_js::{AbsLoc, LocSet};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::OnceLock;

// Downstream layers (engine CLI, bench) consume diagnostics through this
// module; re-export the catalogue so they need not depend on `ajax-js`.
pub use ajax_js::effects::{Diagnostic, Lint, Severity};

/// The cached effect verdict for one handler snippet, computed once at
/// [`analyze_page`] time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BindingVerdict {
    /// Transitive effects of running the snippet at top level.
    pub summary: EffectSummary,
    /// False when the snippet failed to parse (verdicts are then
    /// worst-case: impure, no provable network reach).
    pub parsed: bool,
}

impl BindingVerdict {
    /// True when firing the handler provably cannot change application
    /// state — the static-prune criterion.
    pub fn is_pure(&self) -> bool {
        self.parsed && self.summary.is_pure()
    }

    /// True when the handler can cause server traffic.
    pub fn reaches_network(&self) -> bool {
        self.parsed && self.summary.reaches_network()
    }
}

/// Result of statically analyzing a page.
#[derive(Debug, Clone)]
pub struct PageAnalysis {
    /// The merged invocation graph of all scripts.
    pub graph: InvocationGraph,
    /// All event bindings in the initial DOM.
    pub bindings: Vec<EventBinding>,
    /// Scripts that failed to parse (analysis is best-effort).
    pub script_errors: usize,
    /// Per-function effect summaries (fixpoint over the graph).
    pub effects: EffectAnalysis,
    /// Every `id` attribute present in the initial document.
    pub dom_ids: BTreeSet<String>,
    /// Effect verdicts per distinct handler snippet, keyed by source text.
    verdicts: BTreeMap<String, BindingVerdict>,
    /// For every element id in the initial document, the set of element
    /// ids on its ancestor path. Refines string-level location overlap
    /// into document containment: an `innerHTML` write to an ancestor
    /// destroys every descendant, so `#box` conflicts with `#inner` when
    /// `inner` sits inside `box` even though the id strings are disjoint.
    id_ancestors: BTreeMap<String, BTreeSet<String>>,
    /// Lazily-computed, memoized diagnostics — the analyze subcommand and
    /// the crawl planner both ask; the lint pass runs at most once.
    diagnostics: OnceLock<Vec<Diagnostic>>,
}

impl PageAnalysis {
    /// True when `binding` can cause server traffic (its handler calls,
    /// directly or transitively, a hot node). O(1): verdicts are computed
    /// once at analysis time, not re-derived per query.
    pub fn binding_reaches_network(&self, binding: &EventBinding) -> bool {
        self.verdicts
            .get(&binding.code)
            .is_some_and(BindingVerdict::reaches_network)
    }

    /// The bindings that can cause server traffic — the events a
    /// network-conscious crawler would prioritize.
    pub fn network_bindings(&self) -> Vec<&EventBinding> {
        self.bindings
            .iter()
            .filter(|b| self.binding_reaches_network(b))
            .collect()
    }

    /// The cached verdict for a handler snippet seen in the initial DOM.
    pub fn verdict(&self, code: &str) -> Option<&BindingVerdict> {
        self.verdicts.get(code)
    }

    /// All snippet verdicts, keyed by handler source text.
    pub fn verdicts(&self) -> impl Iterator<Item = (&str, &BindingVerdict)> {
        self.verdicts.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The diagnostics of this page, sorted most severe first: graph-level
    /// lints (undefined calls, redefinitions, dynamic hot calls, dead
    /// writes, self-races, unbounded write sets) plus page-level lints
    /// that need the document — parse failures, dead functions, DOM writes
    /// to ids absent from the initial document, write-set conflicts
    /// between co-bound handlers, stateless handlers, and handlers whose
    /// termination is unprovable. The pass is memoized: the first call
    /// computes, every later call returns the same slice.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        self.diagnostics.get_or_init(|| self.compute_diagnostics())
    }

    fn compute_diagnostics(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for _ in 0..self.script_errors {
            out.push(Diagnostic::new(
                Lint::ScriptParseError,
                "script",
                "a <script> block failed to parse; analysis of it was skipped",
            ));
        }
        out.extend(graph_diagnostics(&self.graph, &self.effects));

        // Dead functions: unreachable from top-level code or any handler.
        let mut live: BTreeSet<String> = self.graph.top_level_calls.iter().cloned().collect();
        let mut frontier: Vec<String> = live.iter().cloned().collect();
        for code in self.verdicts.keys() {
            if let Ok(program) = ajax_js::parse_program(code) {
                let snippet = ajax_js::effects::local_effects_of_snippet(&program.body);
                for site in snippet.call_sites {
                    if live.insert(site.callee.clone()) {
                        frontier.push(site.callee);
                    }
                }
            }
        }
        while let Some(name) = frontier.pop() {
            if let Some(f) = self.graph.function(&name) {
                for callee in &f.calls {
                    if live.insert(callee.clone()) {
                        frontier.push(callee.clone());
                    }
                }
            }
        }
        for f in self.graph.functions() {
            if !live.contains(f.name.as_str()) {
                out.push(Diagnostic::new(
                    Lint::DeadFunction,
                    f.name.clone(),
                    "declared but unreachable from any handler or top-level call",
                ));
            }
        }

        // Constant DOM-write targets that do not exist in the document.
        for (name, sum) in self.effects.summaries() {
            for id in &sum.dom_write_ids {
                if !self.dom_ids.contains(id) {
                    out.push(Diagnostic::new(
                        Lint::DomWriteUnknownId,
                        name,
                        format!("writes to element id `{id}`, absent from the document"),
                    ));
                }
            }
        }

        // SA009: two handlers bound on one element whose DOM write sets
        // may touch the same location — the firing order is observable.
        let mut by_node: BTreeMap<NodeId, Vec<&EventBinding>> = BTreeMap::new();
        for b in &self.bindings {
            by_node.entry(b.node).or_default().push(b);
        }
        for bound in by_node.values().filter(|bs| bs.len() >= 2) {
            for (i, a) in bound.iter().enumerate() {
                for b in &bound[i + 1..] {
                    if a.code == b.code {
                        continue;
                    }
                    let (Some(va), Some(vb)) =
                        (self.verdicts.get(&a.code), self.verdicts.get(&b.code))
                    else {
                        continue;
                    };
                    if !va.parsed || !vb.parsed {
                        continue;
                    }
                    let (wa, wb) = (va.summary.write_locs(), vb.summary.write_locs());
                    if !wa.is_empty() && !wb.is_empty() && self.locs_conflict(&wa, &wb) {
                        out.push(Diagnostic::new(
                            Lint::WriteSetConflict,
                            a.source.clone(),
                            format!(
                                "`{}` ({}) and `{}` ({}) write overlapping DOM locations; the firing order is observable",
                                a.code, a.event_type, b.code, b.event_type
                            ),
                        ));
                    }
                }
            }
        }

        // Per-snippet verdicts: stateless and possibly-non-terminating.
        for (code, verdict) in &self.verdicts {
            if verdict.is_pure() {
                out.push(Diagnostic::new(
                    Lint::StatelessHandler,
                    code.clone(),
                    "handler is provably stateless; the crawler can skip firing it",
                ));
            }
            if verdict.parsed && verdict.summary.may_not_terminate {
                out.push(Diagnostic::new(
                    Lint::NonTerminating,
                    code.clone(),
                    "handler reaches a loop or call cycle; termination is not provable",
                ));
            }
        }

        out.sort_by(|a, b| {
            b.severity()
                .cmp(&a.severity())
                .then_with(|| a.lint.code().cmp(b.lint.code()))
                .then_with(|| a.subject.cmp(&b.subject))
        });
        out
    }

    /// The highest severity present, if any diagnostic fired.
    pub fn max_severity(&self) -> Option<ajax_js::effects::Severity> {
        self.diagnostics().iter().map(|d| d.severity()).max()
    }

    /// The canonical equivalence signature of a handler snippet, or `None`
    /// when the snippet failed to parse (unparsed handlers carry
    /// worst-case verdicts and never share a class).
    pub fn equiv_signature(&self, code: &str) -> Option<String> {
        self.verdicts
            .get(code)
            .filter(|v| v.parsed)
            .map(|v| canonical_signature(&v.summary))
    }

    /// Handler equivalence classes over the page's parsed handler
    /// snippets: two handlers land in one class iff their effect
    /// summaries are isomorphic up to a renaming of symbols
    /// ([`canonical_signature`]). Classes are numbered deterministically
    /// by their lexicographically smallest member.
    ///
    /// Equivalence is a *heuristic* crawl fact, not a semantic proof —
    /// summaries abstract away written values and control flow, so two
    /// same-class handlers may still behave differently on a concrete
    /// state (docs/static-analysis.md). The planner therefore only lets
    /// class members inherit a representative's **barren** verdict, and
    /// `--verify-equiv` cross-checks every inherited verdict at runtime.
    pub fn equiv_classes(&self) -> Vec<EquivClass> {
        let mut by_sig: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for (code, v) in &self.verdicts {
            if v.parsed {
                by_sig
                    .entry(canonical_signature(&v.summary))
                    .or_default()
                    .push(code.clone());
            }
        }
        let mut classes: Vec<(String, Vec<String>)> = by_sig.into_iter().collect();
        classes.sort_by(|a, b| a.1[0].cmp(&b.1[0]));
        classes
            .into_iter()
            .enumerate()
            .map(|(i, (signature, members))| EquivClass {
                id: i as u32,
                signature,
                members,
            })
            .collect()
    }

    /// True when the two handler snippets provably commute: firing A then
    /// B reaches the same state as B then A, so the planner may skip one
    /// interleaving order. Requires both snippets parsed; delegates to
    /// [`PageAnalysis::summaries_commute`].
    pub fn commutes(&self, a: &str, b: &str) -> bool {
        match (self.verdicts.get(a), self.verdicts.get(b)) {
            (Some(va), Some(vb)) if va.parsed && vb.parsed => {
                self.summaries_commute(&va.summary, &vb.summary)
            }
            _ => false,
        }
    }

    /// Commutativity over effect summaries: `A` and `B` commute when
    /// neither is opaque or calls undefined functions, their global
    /// write sets are disjoint from the other's read+write sets, and
    /// their DOM write sets are disjoint (under [`Self::locs_conflict`],
    /// which includes document containment) from the other's DOM
    /// read+write sets. XHR effects are ignored: the modeled servers are
    /// stateless and deterministic, so requests cannot interfere.
    pub fn summaries_commute(&self, a: &EffectSummary, b: &EffectSummary) -> bool {
        if a.opaque || b.opaque || !a.calls_undefined.is_empty() || !b.calls_undefined.is_empty() {
            return false;
        }
        let globals_race = a
            .writes_globals
            .iter()
            .any(|g| b.writes_globals.contains(g) || b.reads_globals.contains(g))
            || b.writes_globals.iter().any(|g| a.reads_globals.contains(g));
        if globals_race {
            return false;
        }
        // read_locs() already includes write targets, so one check per
        // direction covers write/write, write/read and read/write pairs.
        !self.locs_conflict(&a.write_locs(), &b.read_locs())
            && !self.locs_conflict(&b.write_locs(), &a.read_locs())
    }

    /// True when a location of `a` and a location of `b` may denote the
    /// same element (string-level overlap) **or** elements in an
    /// ancestor/descendant relation in the initial document (an
    /// `innerHTML` write to an ancestor replaces every descendant).
    ///
    /// Caveat: the ancestry relation is computed from the *initial*
    /// document; elements created dynamically by handlers are invisible
    /// to it (docs/static-analysis.md).
    pub fn locs_conflict(&self, a: &LocSet, b: &LocSet) -> bool {
        if a.overlaps(b) {
            return true;
        }
        let (ea, eb) = (self.expand_locs(a), self.expand_locs(b));
        ea.iter().any(|x| {
            eb.iter().any(|y| {
                self.id_ancestors.get(x).is_some_and(|anc| anc.contains(y))
                    || self.id_ancestors.get(y).is_some_and(|anc| anc.contains(x))
            })
        })
    }

    /// Expands a location set to the concrete document ids it may denote.
    fn expand_locs(&self, s: &LocSet) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for loc in s.iter() {
            match loc {
                AbsLoc::Id(x) => {
                    out.insert(x.clone());
                }
                AbsLoc::Prefix(p) => {
                    out.extend(
                        self.dom_ids
                            .iter()
                            .filter(|i| i.starts_with(p.as_str()))
                            .cloned(),
                    );
                }
                AbsLoc::Any => out.extend(self.dom_ids.iter().cloned()),
            }
        }
        out
    }
}

/// One handler-equivalence class (see [`PageAnalysis::equiv_classes`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivClass {
    /// Dense class id, deterministic across runs.
    pub id: u32,
    /// The canonical (symbol-renamed) summary signature all members share.
    pub signature: String,
    /// Member handler codes, lexicographically sorted.
    pub members: Vec<String>,
}

/// Renders an effect summary with every symbol replaced by a
/// first-occurrence index in its namespace, so two summaries get equal
/// strings iff they are isomorphic up to a renaming of DOM ids/prefixes
/// (`k`), XHR URLs (`u`), global names (`g`) and undefined callees (`f`).
/// Namespaces are separate and channel kinds are kept apart, so a
/// concrete-id write never matches a prefix write.
pub fn canonical_signature(sum: &EffectSummary) -> String {
    struct Renamer {
        prefix: char,
        seen: Vec<String>,
    }
    impl Renamer {
        fn new(prefix: char) -> Self {
            Renamer {
                prefix,
                seen: Vec::new(),
            }
        }
        fn rename(&mut self, sym: &str) -> String {
            let idx = self.seen.iter().position(|s| s == sym).unwrap_or_else(|| {
                self.seen.push(sym.to_string());
                self.seen.len() - 1
            });
            format!("{}{idx}", self.prefix)
        }
        fn set(&mut self, syms: &BTreeSet<String>) -> String {
            syms.iter()
                .map(|s| self.rename(s))
                .collect::<Vec<_>>()
                .join(",")
        }
    }
    fn nums(set: &BTreeSet<usize>) -> String {
        set.iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(",")
    }
    let mut dom = Renamer::new('k');
    let mut url = Renamer::new('u');
    let mut glo = Renamer::new('g');
    let mut cal = Renamer::new('f');
    format!(
        "wi[{}];wp[{}];wq[{}];wd{};ri[{}];rp[{}];rq[{}];rd{};uc[{}];up[{}];uq[{}];ud{};gr[{}];gw[{}];cu[{}];nt{};op{}",
        dom.set(&sum.dom_write_ids),
        dom.set(&sum.dom_write_prefixes),
        nums(&sum.dom_write_params),
        u8::from(sum.dom_write_dynamic),
        dom.set(&sum.dom_read_ids),
        dom.set(&sum.dom_read_prefixes),
        nums(&sum.dom_read_params),
        u8::from(sum.dom_read_dynamic),
        url.set(&sum.xhr_const_urls),
        url.set(&sum.xhr_url_prefixes),
        nums(&sum.xhr_url_params),
        u8::from(sum.xhr_dynamic),
        glo.set(&sum.reads_globals),
        glo.set(&sum.writes_globals),
        cal.set(&sum.calls_undefined),
        u8::from(sum.may_not_terminate),
        u8::from(sum.opaque),
    )
}

/// Analyzes a page's HTML statically.
pub fn analyze_page(html: &str) -> PageAnalysis {
    let doc = parse_document(html);
    let mut graph = InvocationGraph::default();
    let mut script_errors = 0;
    for src in doc.script_sources() {
        match InvocationGraph::from_source(&src) {
            Ok(g) => graph.merge(g),
            Err(_) => script_errors += 1,
        }
    }
    let bindings = collect_event_bindings(&doc, EventType::all());
    let dom_ids: BTreeSet<String> = doc
        .walk()
        .filter_map(|id| doc.attr(id, "id").map(str::to_string))
        .collect();
    let mut id_ancestors = BTreeMap::new();
    collect_id_ancestors(&doc, doc.root(), &mut Vec::new(), &mut id_ancestors);
    let effects = EffectAnalysis::of(&graph);
    let mut verdicts = BTreeMap::new();
    for b in &bindings {
        verdicts.entry(b.code.clone()).or_insert_with(|| {
            match effects.snippet_summary_src(&b.code) {
                Ok(summary) => BindingVerdict {
                    summary,
                    parsed: true,
                },
                Err(_) => BindingVerdict::default(),
            }
        });
    }
    PageAnalysis {
        graph,
        bindings,
        script_errors,
        effects,
        dom_ids,
        verdicts,
        id_ancestors,
        diagnostics: OnceLock::new(),
    }
}

/// DFS from `node` carrying the stack of enclosing element ids; records,
/// for every element with an `id`, the set of ids on its ancestor path.
fn collect_id_ancestors(
    doc: &Document,
    node: NodeId,
    stack: &mut Vec<String>,
    out: &mut BTreeMap<String, BTreeSet<String>>,
) {
    let own_id = doc.attr(node, "id").map(str::to_string);
    if let Some(id) = &own_id {
        out.insert(id.clone(), stack.iter().cloned().collect());
        stack.push(id.clone());
    }
    let children: Vec<NodeId> = doc.children(node).collect();
    for child in children {
        collect_id_ancestors(doc, child, stack, out);
    }
    if own_id.is_some() {
        stack.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajax_js::effects::Severity;
    use ajax_net::server::{Request, Server};
    use ajax_webgen::{NewsShareServer, NewsSpec, VidShareServer, VidShareSpec};

    #[test]
    fn vidshare_static_analysis_matches_thesis_structure() {
        let server = VidShareServer::new(VidShareSpec::small(20));
        let spec = VidShareSpec::small(20);
        let video = (0..20)
            .find(|&v| ajax_webgen::video_meta(&spec, v).comment_pages >= 3)
            .unwrap();
        let html = server
            .handle(&Request::get(format!("/watch?v={video}").as_str()))
            .body;
        let analysis = analyze_page(&html);

        assert_eq!(analysis.script_errors, 0);
        // One hot node, like YouTube (Table 4.2's function A).
        assert_eq!(
            analysis.graph.hot_nodes(),
            vec!["getUrlXMLResponseAndFillDiv"]
        );
        // gotoPage/nextPage/prevPage reach it; trackers and loaders do not.
        let reach = analysis.graph.reaches_network();
        for f in ["gotoPage", "nextPage", "prevPage"] {
            assert!(reach.contains(f), "{f} must reach the network");
        }
        for f in ["urchinTracker", "showLoading", "initPage", "highlightTitle"] {
            assert!(!reach.contains(f), "{f} must not reach the network");
        }

        // Event classification: nav clicks are network events, the title
        // mouseover is not.
        let network: Vec<&str> = analysis
            .network_bindings()
            .iter()
            .map(|b| b.code.as_str())
            .collect();
        assert!(network.iter().all(|c| c.contains("Page")));
        assert!(network.len() >= 3, "next/prev/jumps: {network:?}");
        let mouseover = analysis
            .bindings
            .iter()
            .find(|b| b.event_type == ajax_dom::EventType::MouseOver)
            .expect("title hover binding");
        assert!(!analysis.binding_reaches_network(mouseover));
    }

    #[test]
    fn newsshare_has_two_hot_nodes() {
        let server = NewsShareServer::new(NewsSpec::small(10));
        let html = server.handle(&Request::get("/news?p=1")).body;
        let analysis = analyze_page(&html);
        assert_eq!(
            analysis.graph.hot_nodes(),
            vec!["fetchSection", "fetchStories"]
        );
        let reach = analysis.graph.reaches_network();
        assert!(reach.contains("loadSection"));
        assert!(reach.contains("moreStories"));
        assert!(!reach.contains("initNews"));
    }

    #[test]
    fn static_analysis_agrees_with_runtime_detection() {
        // The runtime hot-node registry (stack inspection during a crawl)
        // must be a subset of the statically reachable hot-node set, keyed
        // by the innermost frame at send() time.
        use crate::crawler::{CrawlConfig, Crawler};
        use ajax_net::{LatencyModel, Url};
        use std::sync::Arc;

        let spec = NewsSpec::small(10);
        let url = Url::parse(&spec.page_url(1));
        let server = Arc::new(NewsShareServer::new(spec));
        let html = server.handle(&Request::get("/news?p=1")).body;
        let static_hot: std::collections::BTreeSet<String> = analyze_page(&html)
            .graph
            .hot_nodes()
            .into_iter()
            .map(str::to_string)
            .collect();

        let mut crawler = Crawler::new(
            server as Arc<dyn ajax_net::Server>,
            LatencyModel::Zero,
            CrawlConfig::ajax().with_max_states(20),
        );
        let crawl = crawler.crawl_page(&url).unwrap();
        assert_eq!(crawl.stats.hot_nodes as usize, static_hot.len());
    }

    #[test]
    fn malformed_scripts_counted_not_fatal() {
        let analysis = analyze_page(
            "<script>function broken( {</script><script>function ok() { x.send(0); }</script>",
        );
        assert_eq!(analysis.script_errors, 1);
        assert_eq!(analysis.graph.hot_nodes(), vec!["ok"]);
        assert!(analysis
            .diagnostics()
            .iter()
            .any(|d| d.lint == Lint::ScriptParseError));
    }

    #[test]
    fn page_without_scripts() {
        let analysis = analyze_page("<p>plain old web</p>");
        assert!(analysis.graph.hot_nodes().is_empty());
        assert!(analysis.bindings.is_empty());
        assert!(analysis.diagnostics().is_empty());
        assert_eq!(analysis.max_severity(), None);
    }

    #[test]
    fn verdicts_cached_per_snippet() {
        let server = VidShareServer::new(VidShareSpec::small(20));
        let html = server.handle(&Request::get("/watch?v=0")).body;
        let analysis = analyze_page(&html);
        // The mouseover handler is pure; nav handlers are not.
        let hover = analysis.verdict("highlightTitle()").expect("hover verdict");
        assert!(hover.is_pure() && !hover.reaches_network());
        let next = analysis.verdict("nextPage()").expect("next verdict");
        assert!(!next.is_pure() && next.reaches_network());
        // Every binding has a verdict (onload included).
        for b in &analysis.bindings {
            assert!(
                analysis.verdict(&b.code).is_some(),
                "no verdict: {}",
                b.code
            );
        }
    }

    #[test]
    fn generated_sites_are_lint_clean_at_error_level() {
        let vid = VidShareServer::new(VidShareSpec::small(20));
        let news = NewsShareServer::new(NewsSpec::small(10));
        for html in [
            vid.handle(&Request::get("/watch?v=0")).body,
            news.handle(&Request::get("/news?p=1")).body,
        ] {
            let analysis = analyze_page(&html);
            let worst = analysis.max_severity();
            assert!(
                worst.is_none() || worst < Some(Severity::Error),
                "unexpected error diagnostics: {:?}",
                analysis.diagnostics()
            );
        }
    }

    #[test]
    fn vidshare_flags_stateless_hover_handler() {
        let server = VidShareServer::new(VidShareSpec::small(20));
        let html = server.handle(&Request::get("/watch?v=0")).body;
        let analysis = analyze_page(&html);
        let diags = analysis.diagnostics();
        assert!(
            diags
                .iter()
                .any(|d| d.lint == Lint::StatelessHandler && d.subject == "highlightTitle()"),
            "{diags:?}"
        );
        // The only "dead" function is prevPage: the initial DOM renders no
        // "previous" arrow (you start on comment page 1), so it is only
        // reachable from server-injected fragments — the static-analysis
        // blind spot docs/static-analysis.md calls out.
        let dead: Vec<&str> = diags
            .iter()
            .filter(|d| d.lint == Lint::DeadFunction)
            .map(|d| d.subject.as_str())
            .collect();
        assert_eq!(dead, vec!["prevPage"]);
    }

    #[test]
    fn dead_function_and_unknown_id_linted() {
        let analysis = analyze_page(
            "<script>
                function used() { document.getElementById('ghost').innerHTML = 'x'; }
                function orphan() { return 1; }
             </script>
             <div id=\"real\" onclick=\"used()\">go</div>",
        );
        let diags = analysis.diagnostics();
        assert!(diags
            .iter()
            .any(|d| d.lint == Lint::DeadFunction && d.subject == "orphan"));
        assert!(diags
            .iter()
            .any(|d| d.lint == Lint::DomWriteUnknownId && d.subject == "used"));
        assert_eq!(analysis.max_severity(), Some(Severity::Warning));
    }

    #[test]
    fn diagnostics_sorted_most_severe_first() {
        let analysis = analyze_page(
            "<script>function bad() { ghost(); }</script>
             <div onclick=\"bad()\">x</div>
             <div onmouseover=\"1 + 1\">y</div>",
        );
        let diags = analysis.diagnostics();
        assert!(diags.len() >= 2);
        for pair in diags.windows(2) {
            assert!(pair[0].severity() >= pair[1].severity());
        }
        assert_eq!(diags[0].severity(), Severity::Error);
    }

    #[test]
    fn diagnostics_memoized_single_computation() {
        let server = VidShareServer::new(VidShareSpec::small(20));
        let html = server.handle(&Request::get("/watch?v=0")).body;
        let analysis = analyze_page(&html);
        let first = analysis.diagnostics();
        let (ptr, len) = (first.as_ptr(), first.len());
        assert!(len > 0, "vidshare has at least the SA003/SA004 lints");
        // The second call must return the very same buffer, not a re-run
        // of the lint pass.
        let second = analysis.diagnostics();
        assert_eq!(second.as_ptr(), ptr);
        assert_eq!(second.len(), len);
        // max_severity goes through the same cache.
        assert!(analysis.max_severity().is_some());
        assert_eq!(analysis.diagnostics().as_ptr(), ptr);
    }

    #[test]
    fn redefined_handler_keys_equivalence_on_winning_definition() {
        // `h` is redefined mid-page: the first definition only writes the
        // DOM, the winning (last) one also writes a global — the same
        // shape as `g`. The equivalence class must be keyed on the
        // winner: h() groups with g(), not with f() (which matches the
        // losing definition's write set).
        let analysis = analyze_page(
            "<script>
                function h() { document.getElementById('x').innerHTML = 'a'; }
                function f() { document.getElementById('x').innerHTML = 'a'; }
                function g() { document.getElementById('x').innerHTML = 'a'; log = 1; }
             </script>
             <script>
                function h() { document.getElementById('x').innerHTML = 'a'; log = 1; }
             </script>
             <div id=\"x\">t</div>
             <span onclick=\"h()\">h</span>
             <span onclick=\"g()\">g</span>
             <span onclick=\"f()\">f</span>",
        );
        // The fixpoint itself already reflects the winner.
        let h = analysis.verdict("h()").expect("verdict for h()");
        assert!(h.summary.writes_globals.contains("log"), "{h:?}");
        // And so does the class structure.
        assert_eq!(
            analysis.equiv_signature("h()"),
            analysis.equiv_signature("g()")
        );
        assert_ne!(
            analysis.equiv_signature("h()"),
            analysis.equiv_signature("f()")
        );
        let classes = analysis.equiv_classes();
        let hg = classes
            .iter()
            .find(|c| c.members.contains(&"h()".to_string()))
            .unwrap();
        assert_eq!(hg.members, vec!["g()".to_string(), "h()".to_string()]);
        // The redefinition itself is still linted.
        assert!(analysis
            .diagnostics()
            .iter()
            .any(|d| d.lint == Lint::HandlerRedefinition));
    }

    #[test]
    fn row_handlers_collapse_into_one_class_up_to_renaming() {
        // Two per-row handler families with *different* id prefixes and
        // different globals: isomorphic up to renaming, hence one class.
        // The hero loader has a different shape and stays separate.
        let analysis = analyze_page(
            "<script>
                function showCaption(i) { document.getElementById('cap_' + i).innerHTML = caps; }
                function showTag(i) { document.getElementById('tag_' + i).innerHTML = tags; }
                function loadHero(i) {
                    var xhr = new XMLHttpRequest();
                    xhr.open('GET', '/photo?i=' + i, false);
                    xhr.send(null);
                    document.getElementById('hero').innerHTML = xhr.responseText;
                }
             </script>
             <div id=\"hero\" onclick=\"loadHero(1)\">photo</div>
             <div id=\"cap_0\" onclick=\"showCaption(0)\">c0</div>
             <div id=\"cap_1\" onclick=\"showCaption(1)\">c1</div>
             <div id=\"tag_0\" onclick=\"showTag(0)\">t0</div>",
        );
        let classes = analysis.equiv_classes();
        let rows = classes
            .iter()
            .find(|c| c.members.contains(&"showCaption(0)".to_string()))
            .expect("row class");
        assert_eq!(
            rows.members.iter().map(String::as_str).collect::<Vec<_>>(),
            vec!["showCaption(0)", "showCaption(1)", "showTag(0)"],
            "renaming makes cap_/tag_ families isomorphic"
        );
        let hero = classes
            .iter()
            .find(|c| c.members.contains(&"loadHero(1)".to_string()))
            .expect("hero class");
        assert_ne!(hero.signature, rows.signature);
        // Unparsed snippets never get a signature.
        assert_eq!(analysis.equiv_signature("syntax error ("), None);
    }

    #[test]
    fn commutativity_disjoint_regions_yes_shared_or_nested_no() {
        let analysis = analyze_page(
            "<script>
                function setHero() { document.getElementById('hero').innerHTML = 'x'; }
                function setCap() { document.getElementById('cap_3').innerHTML = 'y'; }
                function wipeBox() { document.getElementById('box').innerHTML = ''; }
                function readInner() { var t = document.getElementById('inner').innerHTML; return t; }
                function bumpShared() { n = n + 1; document.getElementById('hero').innerHTML = n; }
             </script>
             <div id=\"hero\" onclick=\"setHero()\">h</div>
             <div id=\"cap_3\" onclick=\"setCap()\">c</div>
             <div id=\"box\" onclick=\"wipeBox()\"><p><span id=\"inner\" onclick=\"readInner()\">i</span></p></div>
             <div onmouseover=\"bumpShared()\">n</div>",
        );
        // Disjoint DOM regions commute.
        assert!(analysis.commutes("setHero()", "setCap()"));
        // Symmetry.
        assert!(analysis.commutes("setCap()", "setHero()"));
        // Writing an ancestor destroys the descendant the other handler
        // reads — string-disjoint ids, but containment forbids reordering.
        assert!(!analysis.commutes("wipeBox()", "readInner()"));
        assert!(!analysis.commutes("readInner()", "wipeBox()"));
        // Write/write on one id never commutes.
        assert!(!analysis.commutes("setHero()", "bumpShared()"));
        // Global read-modify-write races with itself.
        assert!(!analysis.commutes("bumpShared()", "bumpShared()"));
        // Unknown snippets are never proven commuting.
        assert!(!analysis.commutes("setHero()", "nope()"));
    }

    #[test]
    fn sa009_write_set_conflict_on_co_bound_handlers() {
        let conflicted = analyze_page(
            "<script>
                function a() { document.getElementById('x').innerHTML = '1'; }
                function b() { document.getElementById('x').innerHTML = '2'; }
             </script>
             <div id=\"x\">t</div>
             <div onclick=\"a()\" onmouseover=\"b()\">both</div>",
        );
        let diags = conflicted.diagnostics();
        let conflict = diags
            .iter()
            .find(|d| d.lint == Lint::WriteSetConflict)
            .expect("SA009 fires for co-bound overlapping writes");
        assert!(conflict.message.contains("a()") && conflict.message.contains("b()"));
        assert_eq!(conflict.severity(), Severity::Warning);

        // Same handlers on *different* elements: no conflict.
        let separate = analyze_page(
            "<script>
                function a() { document.getElementById('x').innerHTML = '1'; }
                function b() { document.getElementById('x').innerHTML = '2'; }
             </script>
             <div id=\"x\">t</div>
             <div onclick=\"a()\">one</div><div onclick=\"b()\">two</div>",
        );
        assert!(!separate
            .diagnostics()
            .iter()
            .any(|d| d.lint == Lint::WriteSetConflict));

        // Co-bound but disjoint write sets: no conflict.
        let disjoint = analyze_page(
            "<script>
                function a() { document.getElementById('x').innerHTML = '1'; }
                function c() { document.getElementById('y').innerHTML = '2'; }
             </script>
             <div id=\"x\">t</div><div id=\"y\">u</div>
             <div onclick=\"a()\" onmouseover=\"c()\">both</div>",
        );
        assert!(!disjoint
            .diagnostics()
            .iter()
            .any(|d| d.lint == Lint::WriteSetConflict));
    }
}
