//! Repetitive crawling (thesis ch. 10, future work): "crawling AJAX can be
//! seen as a repetitive process, which can reduce the number of crawled
//! events, by ignoring events which did not cause large changes in previous
//! crawling sessions."
//!
//! [`EventHistory`] summarizes a previous session's per-page event outcomes:
//! which `(source, event, action)` triples were *productive* (caused a DOM
//! change) and which were *barren*. A re-crawl with the history skips barren
//! events, cutting both event invocations and their hashing/rollback cost,
//! while still discovering every state the fresh crawl would (under the
//! thesis' snapshot-isolation assumption; a changed application is detected
//! because productive events are re-fired and re-hashed).

use crate::crawler::PageCrawl;
use crate::model::AppModel;
use ajax_dom::hash::FnvHashSet;
use ajax_dom::EventType;
use serde::{Deserialize, Serialize};

/// A summary of a previous crawl session of one page.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EventHistory {
    /// Keys of events that caused a DOM change somewhere on the page.
    productive: FnvHashSet<u64>,
    /// Keys of events that were fired and never changed the DOM.
    barren: FnvHashSet<u64>,
}

impl EventHistory {
    /// The lookup key of an event binding.
    pub fn key(source: &str, event: EventType, action: &str) -> u64 {
        let mut h = ajax_dom::hash::Fnv64::new();
        h.write_str(source);
        h.write_str(event.attr_name());
        h.write_str(action);
        h.finish()
    }

    /// Records a fired event and whether it changed the DOM. A key observed
    /// productive even once stays productive.
    pub fn record(&mut self, source: &str, event: EventType, action: &str, changed: bool) {
        let key = Self::key(source, event, action);
        if changed {
            self.barren.remove(&key);
            self.productive.insert(key);
        } else if !self.productive.contains(&key) {
            self.barren.insert(key);
        }
    }

    /// True when the event is known barren (safe to skip on re-crawl).
    pub fn is_barren(&self, source: &str, event: EventType, action: &str) -> bool {
        let key = Self::key(source, event, action);
        self.barren.contains(&key) && !self.productive.contains(&key)
    }

    /// Number of barren / productive keys.
    pub fn counts(&self) -> (usize, usize) {
        (self.barren.len(), self.productive.len())
    }

    /// Builds a history from a crawled model: its transitions are the
    /// productive events. Barren events cannot be recovered from the model
    /// alone; use [`history_from_crawl`] for full information.
    pub fn from_model(model: &AppModel) -> Self {
        let mut history = Self::default();
        for t in &model.transitions {
            history.record(&t.source, t.event, &t.action, true);
        }
        history
    }
}

/// Builds a full history (productive *and* barren events) from a page crawl
/// by re-deriving the event outcomes: transitions mark productive triples;
/// every other fired binding is barren. Requires the crawl to have been made
/// with the same event-type configuration.
pub fn history_from_crawl(
    crawl: &PageCrawl,
    fired: &[(String, EventType, String)],
) -> EventHistory {
    let mut history = EventHistory::from_model(&crawl.model);
    for (source, event, action) in fired {
        if !history
            .productive
            .contains(&EventHistory::key(source, *event, action))
        {
            history.record(source, *event, action, false);
        }
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn productive_wins_over_barren() {
        let mut h = EventHistory::default();
        h.record("span#x", EventType::Click, "f()", false);
        assert!(h.is_barren("span#x", EventType::Click, "f()"));
        h.record("span#x", EventType::Click, "f()", true);
        assert!(!h.is_barren("span#x", EventType::Click, "f()"));
        // Later barren observation does not demote it.
        h.record("span#x", EventType::Click, "f()", false);
        assert!(!h.is_barren("span#x", EventType::Click, "f()"));
    }

    #[test]
    fn distinct_triples_distinct_keys() {
        assert_ne!(
            EventHistory::key("a", EventType::Click, "f()"),
            EventHistory::key("a", EventType::MouseOver, "f()")
        );
        assert_ne!(
            EventHistory::key("a", EventType::Click, "f()"),
            EventHistory::key("b", EventType::Click, "f()")
        );
        assert_ne!(
            EventHistory::key("a", EventType::Click, "f()"),
            EventHistory::key("a", EventType::Click, "g()")
        );
    }

    #[test]
    fn unknown_events_are_not_barren() {
        let h = EventHistory::default();
        assert!(!h.is_barren("new", EventType::Click, "h()"));
    }
}
