//! The crawl checkpoint journal (docs/robustness.md, "Durability &
//! recovery").
//!
//! A long crawl periodically commits a [`CrawlCheckpoint`] — the precrawl
//! link graph, every completed page's model/stats/history, and the failure
//! ledger — through the atomic framed-commit protocol of [`crate::durable`].
//! Snapshots are numbered `checkpoint-NNNNNN.ajx` inside a journal
//! directory; each write supersedes the previous one, and the two newest
//! generations are retained so a checkpoint that somehow fails validation
//! still leaves a valid predecessor to fall back to.
//!
//! Resume ([`Checkpointer::resume`]) loads the newest *valid* snapshot and
//! hands back a [`ResumeState`]: the saved link graph (skipping the
//! precrawl phase) and the completed pages keyed by URL (skipped by the
//! crawler). Pages that had *failed* are deliberately not skipped: every
//! fault decision is a pure function of `(seed, rule, url, attempt)`, so a
//! fresh process re-crawling them reproduces the identical outcome — which
//! is what makes a resumed crawl bit-equal to an uninterrupted one (the
//! kill-anywhere property pinned by `tests/tests/crash_recovery.rs`).

use crate::crawler::{CrawlConfig, CrawlError, PageStats};
use crate::durable::{self, DurableError, FrameRead};
use crate::model::AppModel;
use crate::precrawl::LinkGraph;
use crate::recrawl::EventHistory;
use ajax_obs::{AttrValue, SpanEvent};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

/// The envelope magic for checkpoint files.
pub const CHECKPOINT_MAGIC: &str = "ajax-checkpoint";
/// The current checkpoint format version.
pub const CHECKPOINT_VERSION: u64 = 1;

/// One successfully crawled page, as preserved across a crash.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PageRecord {
    pub url: String,
    /// The page's application model (visited state hashes included).
    pub model: AppModel,
    pub stats: PageStats,
    /// Page-level crawl attempts it took (1 = first pass; >1 = recovered).
    pub attempts: u32,
    /// Recrawl event history (productive/barren sets) for the next session.
    pub history: EventHistory,
}

/// One page the crawl had given up on by checkpoint time. Restored for
/// accounting and fsck visibility; resume re-crawls these URLs (the fault
/// plan is deterministic, so the outcome is reproduced, not guessed).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailureRecord {
    pub url: String,
    pub error: CrawlError,
    pub attempts: u32,
    pub quarantined: bool,
}

/// A full crawl snapshot: everything needed to resume without re-doing
/// completed work.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CrawlCheckpoint {
    /// Fingerprint of the crawl parameters (config, seed URL, partition
    /// shape). Resuming under a different configuration is refused — the
    /// skip-set would silently corrupt the result.
    pub config_fingerprint: u64,
    /// Monotonic snapshot number within the journal.
    pub seq: u64,
    /// The precrawl hyperlink graph (frontier source), once known.
    pub graph: Option<LinkGraph>,
    /// Every page completed so far, in completion order.
    pub pages: Vec<PageRecord>,
    /// Every page given up on so far.
    pub failures: Vec<FailureRecord>,
}

/// Why checkpoint I/O failed.
#[derive(Debug)]
pub enum CheckpointError {
    /// Commit-protocol or corruption failure (carries the path).
    Durable(DurableError),
    /// The snapshot payload did not deserialize.
    Serde {
        path: PathBuf,
        source: serde::DeError,
    },
    /// A valid checkpoint exists but belongs to a different crawl setup.
    ConfigMismatch {
        path: PathBuf,
        expected: u64,
        found: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Durable(e) => write!(f, "{e}"),
            CheckpointError::Serde { path, source } => {
                write!(f, "checkpoint {}: {source}", path.display())
            }
            CheckpointError::ConfigMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "checkpoint {} belongs to a different crawl configuration \
                 (fingerprint {found:#018x}, this run is {expected:#018x}); \
                 use a fresh --checkpoint-dir or drop --resume",
                path.display()
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<DurableError> for CheckpointError {
    fn from(e: DurableError) -> Self {
        CheckpointError::Durable(e)
    }
}

/// What [`Checkpointer::resume`] restored.
#[derive(Debug, Default)]
pub struct ResumeState {
    /// The saved link graph; when present the precrawl phase can be skipped.
    pub graph: Option<LinkGraph>,
    /// Completed pages keyed by URL — the crawler's skip set.
    pub pages: HashMap<String, PageRecord>,
}

/// Point-in-time checkpoint accounting, surfaced in `BuildReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointStats {
    /// Snapshots committed by this process.
    pub writes: u64,
    /// Pages restored from a previous process's snapshot.
    pub pages_restored: u64,
    /// True when this run started from an existing snapshot.
    pub resumed: bool,
    /// Wall-clock time spent committing snapshots, µs.
    pub write_wall_micros: u64,
}

struct Inner {
    seq: u64,
    graph: Option<LinkGraph>,
    pages: Vec<PageRecord>,
    seen: HashSet<String>,
    failures: Vec<FailureRecord>,
    pending: usize,
    writes: u64,
    write_wall_micros: u64,
    spans: Vec<SpanEvent>,
    /// First write error, surfaced at [`Checkpointer::flush`]; the crawl
    /// itself keeps going (losing durability, not data).
    deferred_error: Option<CheckpointError>,
}

/// The shared checkpoint sink: crawler threads record completed pages, and
/// every `every` new pages a full snapshot is committed atomically.
pub struct Checkpointer {
    dir: PathBuf,
    fingerprint: u64,
    every: usize,
    pages_restored: u64,
    resumed: bool,
    t0: Instant,
    inner: Mutex<Inner>,
}

/// Fingerprints crawl parameters: FNV-64 over the serialized config plus
/// whatever identifying strings the caller mixes in (seed URL, partition
/// shape, fault seed…). The snapshot cadence is excluded — it changes how
/// often the journal commits, never what gets crawled, so resuming with a
/// different `checkpoint_every` must not be a config mismatch.
pub fn config_fingerprint(config: &CrawlConfig, extra: &[&str]) -> u64 {
    let mut config = config.clone();
    config.checkpoint_every = 0;
    let mut text = serde_json::to_string(&config).unwrap_or_default();
    for part in extra {
        text.push('\u{1f}');
        text.push_str(part);
    }
    ajax_dom::fnv64_str(&text)
}

fn snapshot_name(seq: u64) -> String {
    format!("checkpoint-{seq:06}.ajx")
}

/// Numbered snapshot files in `dir`, newest first.
fn snapshot_files(dir: &Path) -> Vec<(u64, PathBuf)> {
    let mut files: Vec<(u64, PathBuf)> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .filter_map(|entry| {
            let name = entry.file_name().into_string().ok()?;
            let seq: u64 = name
                .strip_prefix("checkpoint-")?
                .strip_suffix(".ajx")?
                .parse()
                .ok()?;
            Some((seq, entry.path()))
        })
        .collect();
    files.sort_by_key(|f| std::cmp::Reverse(f.0));
    files
}

impl Checkpointer {
    /// Opens a fresh journal in `dir`, clearing any previous generation's
    /// snapshots (a fresh build must not be resumable into stale state).
    pub fn fresh(
        dir: impl Into<PathBuf>,
        every: usize,
        fingerprint: u64,
    ) -> Result<Self, CheckpointError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| {
            CheckpointError::Durable(DurableError::Io {
                path: dir.clone(),
                source: e,
            })
        })?;
        for (_, path) in snapshot_files(&dir) {
            std::fs::remove_file(&path).ok();
        }
        std::fs::remove_file(durable::tmp_path(&dir.join(snapshot_name(0)))).ok();
        Ok(Self::new(
            dir,
            every,
            fingerprint,
            0,
            None,
            Vec::new(),
            Vec::new(),
            false,
        ))
    }

    /// Opens the journal in `dir` and restores the newest valid snapshot.
    /// A torn or corrupt newest snapshot falls back to its predecessor; an
    /// empty or missing directory resumes from nothing (fresh crawl). A
    /// snapshot from a *different* crawl configuration is an error.
    pub fn resume(
        dir: impl Into<PathBuf>,
        every: usize,
        fingerprint: u64,
    ) -> Result<(Self, ResumeState), CheckpointError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| {
            CheckpointError::Durable(DurableError::Io {
                path: dir.clone(),
                source: e,
            })
        })?;
        let mut restored: Option<(u64, CrawlCheckpoint)> = None;
        for (seq, path) in snapshot_files(&dir) {
            match Self::load_snapshot(&path) {
                Ok(ckpt) => {
                    if ckpt.config_fingerprint != fingerprint {
                        return Err(CheckpointError::ConfigMismatch {
                            path,
                            expected: fingerprint,
                            found: ckpt.config_fingerprint,
                        });
                    }
                    restored = Some((seq, ckpt));
                    break;
                }
                // Corrupt / unreadable newest generation: fall back to the
                // previous snapshot — the journal property.
                Err(_) => continue,
            }
        }
        let (next_seq, graph, pages, failures, resumed) = match restored {
            Some((seq, ckpt)) => (seq + 1, ckpt.graph, ckpt.pages, ckpt.failures, true),
            None => (0, None, Vec::new(), Vec::new(), false),
        };
        let state = ResumeState {
            graph: graph.clone(),
            pages: pages.iter().map(|r| (r.url.clone(), r.clone())).collect(),
        };
        let mut me = Self::new(
            dir,
            every,
            fingerprint,
            next_seq,
            graph,
            pages,
            failures,
            resumed,
        );
        me.pages_restored = state.pages.len() as u64;
        Ok((me, state))
    }

    #[allow(clippy::too_many_arguments)]
    fn new(
        dir: PathBuf,
        every: usize,
        fingerprint: u64,
        seq: u64,
        graph: Option<LinkGraph>,
        pages: Vec<PageRecord>,
        failures: Vec<FailureRecord>,
        resumed: bool,
    ) -> Self {
        let seen = pages.iter().map(|r| r.url.clone()).collect();
        Self {
            dir,
            fingerprint,
            every: every.max(1),
            pages_restored: 0,
            resumed,
            t0: Instant::now(),
            inner: Mutex::new(Inner {
                seq,
                graph,
                pages,
                seen,
                failures,
                pending: 0,
                writes: 0,
                write_wall_micros: 0,
                spans: Vec::new(),
                deferred_error: None,
            }),
        }
    }

    fn load_snapshot(path: &Path) -> Result<CrawlCheckpoint, CheckpointError> {
        match durable::read_framed(path)? {
            FrameRead::Framed {
                magic,
                version,
                payload,
            } => {
                if magic != CHECKPOINT_MAGIC || version != CHECKPOINT_VERSION {
                    return Err(CheckpointError::Durable(DurableError::Corrupt {
                        path: path.to_path_buf(),
                        detail: format!(
                            "unexpected envelope {magic:?} v{version} (want \
                             {CHECKPOINT_MAGIC:?} v{CHECKPOINT_VERSION})"
                        ),
                    }));
                }
                let text = String::from_utf8(payload).map_err(|e| {
                    CheckpointError::Durable(DurableError::Corrupt {
                        path: path.to_path_buf(),
                        detail: format!("payload not utf-8: {e}"),
                    })
                })?;
                serde_json::from_str::<CrawlCheckpoint>(&text).map_err(|e| CheckpointError::Serde {
                    path: path.to_path_buf(),
                    source: serde::DeError::new(e.to_string()),
                })
            }
            FrameRead::NotFramed(_) => Err(CheckpointError::Durable(DurableError::Corrupt {
                path: path.to_path_buf(),
                detail: "not a framed checkpoint file".to_string(),
            })),
        }
    }

    /// Records the precrawl link graph and commits a snapshot immediately —
    /// the precrawl is one atomic unit of progress.
    pub fn record_graph(&self, graph: &LinkGraph) {
        let mut inner = self.inner.lock().expect("checkpoint lock");
        inner.graph = Some(graph.clone());
        self.snapshot_locked(&mut inner);
    }

    /// Records one completed page; commits a snapshot after `every` new
    /// pages since the last one.
    pub fn record_page(&self, record: PageRecord) {
        let mut inner = self.inner.lock().expect("checkpoint lock");
        if !inner.seen.insert(record.url.clone()) {
            return;
        }
        inner.pages.push(record);
        inner.pending += 1;
        if inner.pending >= self.every {
            self.snapshot_locked(&mut inner);
        }
    }

    /// Records one abandoned page (accounting; resume re-crawls it).
    pub fn record_failure(&self, record: FailureRecord) {
        let mut inner = self.inner.lock().expect("checkpoint lock");
        if inner.failures.iter().any(|f| f.url == record.url) {
            return;
        }
        inner.failures.push(record);
    }

    /// Commits a final snapshot (even if nothing is pending) and surfaces
    /// any write error deferred during the crawl.
    pub fn flush(&self) -> Result<CheckpointStats, CheckpointError> {
        let mut inner = self.inner.lock().expect("checkpoint lock");
        self.snapshot_locked(&mut inner);
        if let Some(e) = inner.deferred_error.take() {
            return Err(e);
        }
        Ok(CheckpointStats {
            writes: inner.writes,
            pages_restored: self.pages_restored,
            resumed: self.resumed,
            write_wall_micros: inner.write_wall_micros,
        })
    }

    /// Current accounting without forcing a snapshot.
    pub fn stats(&self) -> CheckpointStats {
        let inner = self.inner.lock().expect("checkpoint lock");
        CheckpointStats {
            writes: inner.writes,
            pages_restored: self.pages_restored,
            resumed: self.resumed,
            write_wall_micros: inner.write_wall_micros,
        }
    }

    /// Drains the `checkpoint.write` spans recorded so far (wall-clock
    /// microseconds since the checkpointer was opened).
    pub fn take_spans(&self) -> Vec<SpanEvent> {
        std::mem::take(&mut self.inner.lock().expect("checkpoint lock").spans)
    }

    fn snapshot_locked(&self, inner: &mut Inner) {
        let seq = inner.seq;
        let snapshot = CrawlCheckpoint {
            config_fingerprint: self.fingerprint,
            seq,
            graph: inner.graph.clone(),
            pages: inner.pages.clone(),
            failures: inner.failures.clone(),
        };
        let payload = match serde_json::to_string(&snapshot) {
            Ok(json) => json,
            Err(e) => {
                if inner.deferred_error.is_none() {
                    inner.deferred_error = Some(CheckpointError::Serde {
                        path: self.dir.join(snapshot_name(seq)),
                        source: serde::DeError::new(e.to_string()),
                    });
                }
                return;
            }
        };
        let path = self.dir.join(snapshot_name(seq));
        let started = self.t0.elapsed().as_micros() as u64;
        let result = durable::write_framed(
            &path,
            CHECKPOINT_MAGIC,
            CHECKPOINT_VERSION,
            payload.as_bytes(),
        );
        let ended = self.t0.elapsed().as_micros() as u64;
        match result {
            Ok(()) => {
                inner.seq += 1;
                inner.pending = 0;
                inner.writes += 1;
                inner.write_wall_micros += ended - started;
                inner.spans.push(SpanEvent {
                    name: "checkpoint.write",
                    track: 0,
                    start: started,
                    dur: ended - started,
                    args: vec![
                        ("seq", AttrValue::U64(seq)),
                        ("pages", AttrValue::U64(inner.pages.len() as u64)),
                        ("bytes", AttrValue::U64(payload.len() as u64)),
                    ],
                });
                // Retain the two newest generations; prune the rest.
                for (_, old) in snapshot_files(&self.dir).into_iter().skip(2) {
                    std::fs::remove_file(&old).ok();
                }
            }
            Err(e) => {
                if inner.deferred_error.is_none() {
                    inner.deferred_error = Some(CheckpointError::Durable(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ajax_ckpt_{}_{name}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    fn page(url: &str, states: u64) -> PageRecord {
        let mut model = AppModel::new(url);
        model.add_state(1, format!("state text of {url}"), None);
        PageRecord {
            url: url.to_string(),
            model,
            stats: PageStats {
                states,
                ..PageStats::default()
            },
            attempts: 1,
            history: EventHistory::default(),
        }
    }

    #[test]
    fn snapshot_roundtrip_restores_pages_and_graph() {
        let dir = temp_dir("roundtrip");
        let fp = 42;
        let ckpt = Checkpointer::fresh(&dir, 2, fp).unwrap();
        let mut graph = LinkGraph::default();
        graph.urls.push("http://x/watch?v=0".into());
        ckpt.record_graph(&graph);
        ckpt.record_page(page("http://x/watch?v=0", 3));
        ckpt.record_page(page("http://x/watch?v=1", 2));
        let stats = ckpt.flush().unwrap();
        assert!(stats.writes >= 2, "graph + cadence snapshots: {stats:?}");

        let (resumed, state) = Checkpointer::resume(&dir, 2, fp).unwrap();
        assert!(resumed.stats().resumed);
        assert_eq!(resumed.stats().pages_restored, 2);
        assert_eq!(state.pages.len(), 2);
        assert_eq!(
            state.graph.as_ref().map(|g| g.urls.len()),
            Some(1),
            "graph restored"
        );
        assert_eq!(state.pages["http://x/watch?v=1"].stats.states, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_from_empty_dir_is_fresh() {
        let dir = temp_dir("empty");
        let (ckpt, state) = Checkpointer::resume(&dir, 4, 7).unwrap();
        assert!(!ckpt.stats().resumed);
        assert!(state.pages.is_empty() && state.graph.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_previous() {
        let dir = temp_dir("fallback");
        let fp = 9;
        let ckpt = Checkpointer::fresh(&dir, 1, fp).unwrap();
        ckpt.record_page(page("http://x/a", 1)); // snapshot 0
        ckpt.record_page(page("http://x/b", 1)); // snapshot 1
        drop(ckpt);
        // Tear the newest snapshot mid-payload.
        let files = snapshot_files(&dir);
        let newest = &files[0].1;
        let bytes = std::fs::read(newest).unwrap();
        std::fs::write(newest, &bytes[..bytes.len() / 2]).unwrap();

        let (ckpt, state) = Checkpointer::resume(&dir, 1, fp).unwrap();
        assert!(ckpt.stats().resumed, "fell back to snapshot 0");
        assert_eq!(state.pages.len(), 1, "only the older generation's page");
        assert!(state.pages.contains_key("http://x/a"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn config_mismatch_refused() {
        let dir = temp_dir("mismatch");
        let ckpt = Checkpointer::fresh(&dir, 1, 100).unwrap();
        ckpt.record_page(page("http://x/a", 1));
        drop(ckpt);
        let err = match Checkpointer::resume(&dir, 1, 200) {
            Err(e) => e,
            Ok(_) => panic!("resume under a different fingerprint must fail"),
        };
        assert!(matches!(err, CheckpointError::ConfigMismatch { .. }));
        let shown = format!("{err}");
        assert!(shown.contains("different crawl configuration"), "{shown}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fresh_clears_previous_journal() {
        let dir = temp_dir("clears");
        let ckpt = Checkpointer::fresh(&dir, 1, 5).unwrap();
        ckpt.record_page(page("http://x/a", 1));
        drop(ckpt);
        let ckpt = Checkpointer::fresh(&dir, 1, 5).unwrap();
        drop(ckpt);
        let (_, state) = Checkpointer::resume(&dir, 1, 5).unwrap();
        assert!(state.pages.is_empty(), "fresh() wiped the old snapshots");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_page_records_are_ignored() {
        let dir = temp_dir("dedup");
        let ckpt = Checkpointer::fresh(&dir, 10, 1).unwrap();
        ckpt.record_page(page("http://x/a", 1));
        ckpt.record_page(page("http://x/a", 1));
        ckpt.flush().unwrap();
        let (_, state) = Checkpointer::resume(&dir, 10, 1).unwrap();
        assert_eq!(state.pages.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_spans_recorded() {
        let dir = temp_dir("spans");
        let ckpt = Checkpointer::fresh(&dir, 1, 3).unwrap();
        ckpt.record_page(page("http://x/a", 1));
        ckpt.flush().unwrap();
        let spans = ckpt.take_spans();
        assert!(!spans.is_empty());
        assert!(spans.iter().all(|s| s.name == "checkpoint.write"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_sensitive_to_config_and_extras() {
        let a = config_fingerprint(&CrawlConfig::ajax(), &["seed"]);
        let b = config_fingerprint(&CrawlConfig::ajax(), &["other"]);
        let c = config_fingerprint(&CrawlConfig::traditional(), &["seed"]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, config_fingerprint(&CrawlConfig::ajax(), &["seed"]));
    }

    #[test]
    fn fingerprint_ignores_snapshot_cadence() {
        // Resuming with a different --checkpoint-every must not look like a
        // different crawl: cadence changes journal frequency, not output.
        let a = config_fingerprint(&CrawlConfig::ajax().with_checkpoint_every(4), &["seed"]);
        let b = config_fingerprint(&CrawlConfig::ajax().with_checkpoint_every(64), &["seed"]);
        assert_eq!(a, b);
    }
}
