//! # ajax-crawl
//!
//! The primary contribution of *AJAX Crawl: Making AJAX Applications
//! Searchable* (Matter, ICDE'09 submission): a crawler that explores an AJAX
//! application **by invoking user events** and builds the application model —
//! a transition graph whose nodes are application states (DOM trees) and
//! whose edges are event-annotated transitions — instead of stopping at the
//! single HTML document a traditional crawler sees.
//!
//! The crate provides:
//!
//! * [`model`] — states, transitions, the per-page [`model::AppModel`] and
//!   per-site link graph (thesis ch. 2);
//! * [`browser`] — the embedded "browser": `ajax-dom` document + `ajax-js`
//!   interpreter + an XHR host object wired to `ajax-net`, with the
//!   hot-node interception point (thesis §4.4);
//! * [`hotnode`] — the hot-node cache keyed by `(function, actual args)`
//!   (thesis ch. 4);
//! * [`crawler`] — the breadth-first crawling algorithms: traditional
//!   (JS off, first state only), basic AJAX (Alg. 3.1.1) and heuristic AJAX
//!   with hot-node caching (Alg. 4.2.1), with duplicate-state detection via
//!   content hashing and per-page virtual-time traces;
//! * [`pagerank`] — power-iteration PageRank shared by the precrawler (page
//!   graph) and the indexer's AJAXRank (state graph);
//! * [`precrawl`] — the Precrawling phase: hyperlink graph + PageRank
//!   (thesis §6.2);
//! * [`partition`] — the URLPartitioner (thesis §6.2.2);
//! * [`parallel`] — `MpCrawler`, the multi-process-line parallel crawler
//!   (thesis §6.3), running truly in parallel via crossbeam while mapping
//!   work onto deterministic virtual time via `ajax-net`'s scheduler.

pub mod analysis;
pub mod browser;
#[cfg(test)]
mod browser_tests;
pub mod checkpoint;
pub mod crawler;
pub mod durable;
pub mod hotnode;
pub mod mapfile;
pub mod model;
pub mod pagerank;
pub mod parallel;
pub mod partition;
pub mod precrawl;
pub mod recrawl;
pub mod replay;

pub use analysis::{analyze_page, canonical_signature, BindingVerdict, EquivClass, PageAnalysis};
pub use browser::Browser;
pub use checkpoint::{
    CheckpointError, CheckpointStats, Checkpointer, CrawlCheckpoint, FailureRecord, PageRecord,
    ResumeState,
};
pub use crawler::{
    CpuCostModel, CrawlConfig, CrawlError, Crawler, FetchFailure, LastError, PageCrawl, PageStats,
    RetryPolicy,
};
pub use durable::DurableError;
pub use hotnode::{HotNodeCache, HotNodeStats};
pub use mapfile::MappedFile;
pub use model::{AppModel, SiteModel, State, StateId, Transition};
pub use pagerank::pagerank;
pub use parallel::{MpCrawler, MpReport, PageFailure};
pub use partition::{partition_urls, Partition};
pub use precrawl::{LinkGraph, Precrawler};
pub use recrawl::EventHistory;
pub use replay::{reconstruct_state, ReplayError, ReplayServer};
