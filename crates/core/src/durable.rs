//! Crash-safe file primitives shared by index persistence and crawl
//! checkpoints (docs/robustness.md, "Durability & recovery").
//!
//! Two layers:
//!
//! * **Atomic commit** ([`commit_bytes`]): serialize to `<path>.tmp`, fsync
//!   the file, rename over the target, fsync the parent directory. A reader
//!   observes either the old generation or the new one — never a torn mix —
//!   and a SIGKILL at any instruction leaves at worst a stale `.tmp` beside
//!   an intact target.
//! * **Framed envelope** ([`write_framed`] / [`read_framed`]): a one-line
//!   JSON header carrying magic, version, a CRC32 of the payload and the
//!   payload length, then the payload bytes, then a trailing end-of-file
//!   marker line. Truncation anywhere (missing marker, short payload) and
//!   bit rot anywhere (CRC mismatch) surface as [`DurableError::Corrupt`]
//!   with the offending path — never a panic, never silently-partial data.
//!
//! The header is its own line so sniffing is cheap: a file whose first line
//! is not a frame header is handed back verbatim ([`FrameRead::NotFramed`])
//! for the caller's legacy-format fallback.

use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// The trailing end-of-file marker line. Its absence is how a truncated
/// file is detected even when the truncation point lands exactly on the
/// declared payload length.
pub const EOF_MARKER: &str = "#ajax-durable-eof";

/// Why a durable read or commit failed. Every variant names the file.
#[derive(Debug)]
pub enum DurableError {
    /// The underlying filesystem operation failed.
    Io {
        path: PathBuf,
        source: std::io::Error,
    },
    /// The file carries a frame header but the frame does not check out:
    /// truncated payload, missing end marker, CRC mismatch, trailing junk.
    Corrupt { path: PathBuf, detail: String },
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io { path, source } => {
                write!(f, "i/o error on {}: {source}", path.display())
            }
            DurableError::Corrupt { path, detail } => {
                write!(f, "corrupt file {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for DurableError {}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3 polynomial, reflected), table-driven.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `bytes` — the checksum in every frame header. Catches
/// all single-bit flips and all burst errors up to 32 bits.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Atomic commit.
// ---------------------------------------------------------------------------

/// The sibling temp file a commit stages through: `<path>.tmp`.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

fn io_err(path: &Path, source: std::io::Error) -> DurableError {
    DurableError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// Atomically replaces `path` with `bytes`: write `<path>.tmp`, fsync,
/// rename over `path`, fsync the parent directory so the rename itself is
/// durable. A crash at any point leaves either the previous generation or
/// the new one, plus at worst a stale `.tmp` (which `fsck` calls
/// repairable).
pub fn commit_bytes(path: impl AsRef<Path>, bytes: &[u8]) -> Result<(), DurableError> {
    let path = path.as_ref();
    let tmp = tmp_path(path);
    {
        let mut file = fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        file.write_all(bytes).map_err(|e| io_err(&tmp, e))?;
        file.sync_all().map_err(|e| io_err(&tmp, e))?;
    }
    fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
    // Durability of the rename needs the directory entry flushed too.
    #[cfg(unix)]
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        let dir = fs::File::open(parent).map_err(|e| io_err(parent, e))?;
        dir.sync_all().map_err(|e| io_err(parent, e))?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Framed envelope.
// ---------------------------------------------------------------------------

/// Frames `payload` under `(magic, version)` and commits it atomically.
pub fn write_framed(
    path: impl AsRef<Path>,
    magic: &str,
    version: u64,
    payload: &[u8],
) -> Result<(), DurableError> {
    let header = format!(
        r#"{{"magic":"{magic}","version":{version},"payload_crc32":{},"payload_len":{}}}"#,
        crc32(payload),
        payload.len()
    );
    let mut bytes = Vec::with_capacity(header.len() + payload.len() + EOF_MARKER.len() + 3);
    bytes.extend_from_slice(header.as_bytes());
    bytes.push(b'\n');
    bytes.extend_from_slice(payload);
    bytes.push(b'\n');
    bytes.extend_from_slice(EOF_MARKER.as_bytes());
    bytes.push(b'\n');
    commit_bytes(path, &bytes)
}

/// What [`read_framed`] found on disk.
#[derive(Debug)]
pub enum FrameRead {
    /// A checksummed frame that validated end to end.
    Framed {
        magic: String,
        version: u64,
        payload: Vec<u8>,
    },
    /// The first line is not a frame header; here are the raw bytes for a
    /// legacy-format fallback parse.
    NotFramed(Vec<u8>),
}

/// Parses the first line of `bytes` as a frame header, if it is one.
fn parse_header(line: &str) -> Option<(String, u64, u32, usize)> {
    let value: serde::Value = serde_json::from_str(line).ok()?;
    let obj = value.as_object()?;
    let magic = obj.get("magic")?.as_str()?.to_string();
    let version = match obj.get("version")? {
        serde::Value::U64(v) => *v,
        _ => return None,
    };
    let crc = match obj.get("payload_crc32")? {
        serde::Value::U64(v) => u32::try_from(*v).ok()?,
        _ => return None,
    };
    let len = match obj.get("payload_len")? {
        serde::Value::U64(v) => usize::try_from(*v).ok()?,
        _ => return None,
    };
    Some((magic, version, crc, len))
}

/// Validates a frame in place: header sanity, declared payload length,
/// trailing end-of-file marker, CRC32 over the **raw payload bytes** (no
/// UTF-8 assumption — binary payloads are first-class). Returns the parsed
/// `(magic, version)` and the payload's byte range within `bytes`, or `None`
/// when the content is not framed at all (legacy fallback territory).
fn validate_frame(
    bytes: &[u8],
    path: &Path,
) -> Result<Option<(String, u64, std::ops::Range<usize>)>, DurableError> {
    let corrupt = |detail: String| DurableError::Corrupt {
        path: path.to_path_buf(),
        detail,
    };

    // A file that *starts* like a frame header but never completes one is a
    // torn header from a crashed write, not a legacy file. Legacy envelopes
    // also open with `{"magic":` — but they are complete JSON documents, so
    // require the content to be unparseable before calling it torn.
    let torn_header = |content: &[u8]| {
        content.starts_with(br#"{"magic":"#)
            && std::str::from_utf8(content)
                .ok()
                .and_then(|text| serde_json::from_str::<serde::Value>(text).ok())
                .is_none()
    };

    let Some(header_end) = bytes.iter().position(|&b| b == b'\n') else {
        if torn_header(bytes) {
            return Err(corrupt(
                "truncated frame header (file ends mid-header)".to_string(),
            ));
        }
        return Ok(None);
    };
    let Ok(header_line) = std::str::from_utf8(&bytes[..header_end]) else {
        return Ok(None);
    };
    let Some((magic, version, crc, len)) = parse_header(header_line) else {
        if torn_header(header_line.as_bytes()) {
            return Err(corrupt("malformed frame header".to_string()));
        }
        return Ok(None);
    };

    // From here on the file claims to be framed, so every deviation is
    // corruption, not a format question.
    let payload_start = header_end + 1;
    let trailer = format!("\n{EOF_MARKER}\n");
    let expected_total = payload_start + len + trailer.len();
    if bytes.len() < expected_total {
        return Err(corrupt(format!(
            "truncated: {} bytes on disk, frame declares {expected_total}",
            bytes.len()
        )));
    }
    if bytes.len() > expected_total {
        return Err(corrupt(format!(
            "trailing data: {} bytes on disk, frame declares {expected_total}",
            bytes.len()
        )));
    }
    if &bytes[payload_start + len..] != trailer.as_bytes() {
        return Err(corrupt("missing end-of-file marker".to_string()));
    }
    let payload = &bytes[payload_start..payload_start + len];
    let actual = crc32(payload);
    if actual != crc {
        return Err(corrupt(format!(
            "checksum mismatch: payload crc32 {actual:#010x}, header declares {crc:#010x}"
        )));
    }
    Ok(Some((magic, version, payload_start..payload_start + len)))
}

/// Reads `path` and validates its frame: header sanity, declared payload
/// length, trailing end-of-file marker, CRC32. Any violation is
/// [`DurableError::Corrupt`] naming the path and what failed; a file that
/// does not even start with a frame header comes back as
/// [`FrameRead::NotFramed`] so callers can run their legacy parser (and
/// produce their historical error messages).
pub fn read_framed(path: impl AsRef<Path>) -> Result<FrameRead, DurableError> {
    let path = path.as_ref();
    let bytes = fs::read(path).map_err(|e| io_err(path, e))?;
    match validate_frame(&bytes, path)? {
        Some((magic, version, payload)) => Ok(FrameRead::Framed {
            magic,
            version,
            payload: bytes[payload].to_vec(),
        }),
        None => Ok(FrameRead::NotFramed(bytes)),
    }
}

/// A validated frame over a memory-mapped file: the payload is a borrowed
/// window into the mapping, never copied to the heap. The frame (header,
/// marker, CRC) is verified once at open; afterwards [`MappedFrame::payload`]
/// is a plain slice whose pages fault in on demand.
#[derive(Debug)]
pub struct MappedFrame {
    buf: crate::mapfile::MappedFile,
    pub magic: String,
    pub version: u64,
    payload: std::ops::Range<usize>,
}

impl MappedFrame {
    /// The validated payload bytes, borrowed from the mapping.
    pub fn payload(&self) -> &[u8] {
        &self.buf[self.payload.clone()]
    }

    /// True when the backing is an actual kernel mapping.
    pub fn is_mapped(&self) -> bool {
        self.buf.is_mapped()
    }
}

/// What [`map_framed`] found on disk.
#[derive(Debug)]
pub enum MapRead {
    /// A checksummed frame that validated end to end, payload left in place.
    Framed(MappedFrame),
    /// The first line is not a frame header; raw bytes for a legacy parse.
    NotFramed(Vec<u8>),
}

/// [`read_framed`], zero-copy: memory-maps `path`, validates the frame in
/// place and hands back a [`MappedFrame`] whose payload borrows the mapping.
/// Unframed (legacy) files are small JSON documents — those are returned as
/// owned bytes like [`read_framed`] does.
pub fn map_framed(path: impl AsRef<Path>) -> Result<MapRead, DurableError> {
    let path = path.as_ref();
    let buf = crate::mapfile::MappedFile::open(path).map_err(|e| io_err(path, e))?;
    match validate_frame(&buf, path)? {
        Some((magic, version, payload)) => Ok(MapRead::Framed(MappedFrame {
            buf,
            magic,
            version,
            payload,
        })),
        None => Ok(MapRead::NotFramed(buf.as_slice().to_vec())),
    }
}

/// What `fsck` learned about one file.
#[derive(Debug)]
pub enum Inspection {
    /// A valid frame: magic, version, payload bytes.
    Ok {
        magic: String,
        version: u64,
        payload_len: usize,
    },
    /// Not framed at all — a legacy or foreign file.
    Legacy { bytes: usize },
}

/// Validates `path` without knowing its expected magic — the `fsck`
/// primitive. Corruption comes back as the error; intact frames and
/// unframed (legacy) files as [`Inspection`].
pub fn inspect(path: impl AsRef<Path>) -> Result<Inspection, DurableError> {
    match read_framed(&path)? {
        FrameRead::Framed {
            magic,
            version,
            payload,
        } => Ok(Inspection::Ok {
            magic,
            version,
            payload_len: payload.len(),
        }),
        FrameRead::NotFramed(bytes) => Ok(Inspection::Legacy { bytes: bytes.len() }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ajax_durable_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn crc32_known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip() {
        let path = temp("roundtrip");
        write_framed(&path, "ajax-test", 7, b"hello payload").unwrap();
        match read_framed(&path).unwrap() {
            FrameRead::Framed {
                magic,
                version,
                payload,
            } => {
                assert_eq!(magic, "ajax-test");
                assert_eq!(version, 7);
                assert_eq!(payload, b"hello payload");
            }
            other => panic!("expected framed, got {other:?}"),
        }
        assert!(!tmp_path(&path).exists(), "commit removed the temp file");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_payload_roundtrips_and_maps() {
        // Non-UTF-8 payload containing newlines, NULs and the EOF marker's
        // own bytes: the frame must treat it as opaque binary.
        let path = temp("binary");
        let mut payload: Vec<u8> = (0u8..=255).collect();
        payload.extend_from_slice(b"\n#ajax-durable-eof\n");
        payload.extend_from_slice(&[0xFF, 0xFE, 0x00, b'\n']);
        write_framed(&path, "ajax-bin", 4, &payload).unwrap();
        match read_framed(&path).unwrap() {
            FrameRead::Framed {
                magic,
                version,
                payload: read_back,
            } => {
                assert_eq!(magic, "ajax-bin");
                assert_eq!(version, 4);
                assert_eq!(read_back, payload);
            }
            other => panic!("expected framed, got {other:?}"),
        }
        match map_framed(&path).unwrap() {
            MapRead::Framed(frame) => {
                assert_eq!(frame.magic, "ajax-bin");
                assert_eq!(frame.version, 4);
                assert_eq!(frame.payload(), payload.as_slice());
            }
            MapRead::NotFramed(_) => panic!("expected mapped frame"),
        }
        fs::remove_file(&path).ok();
    }

    #[test]
    fn map_framed_matches_read_framed_on_corruption() {
        let path = temp("map_corrupt");
        write_framed(&path, "ajax-bin", 4, b"some payload here").unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let mapped = map_framed(&path);
        let read = read_framed(&path);
        match (mapped, read) {
            (
                Err(DurableError::Corrupt { detail: a, .. }),
                Err(DurableError::Corrupt { detail: b, .. }),
            ) => {
                assert_eq!(a, b, "mapped and heap reads must agree on the diagnosis");
            }
            other => panic!("expected matching Corrupt errors, got {other:?}"),
        }
        fs::remove_file(&path).ok();
    }

    #[test]
    fn map_framed_falls_back_to_legacy_bytes() {
        let path = temp("map_legacy");
        fs::write(&path, b"{\"not\": \"framed\"}").unwrap();
        match map_framed(&path).unwrap() {
            MapRead::NotFramed(bytes) => assert_eq!(bytes, b"{\"not\": \"framed\"}"),
            MapRead::Framed(_) => panic!("legacy JSON must not parse as a frame"),
        }
        fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_at_every_byte_is_corrupt_or_legacy() {
        let path = temp("trunc_src");
        write_framed(&path, "ajax-test", 1, b"0123456789abcdef").unwrap();
        let full = fs::read(&path).unwrap();
        let cut = temp("trunc_cut");
        for n in 0..full.len() {
            fs::write(&cut, &full[..n]).unwrap();
            match read_framed(&cut) {
                Ok(FrameRead::Framed { .. }) => {
                    panic!("truncation to {n} bytes read back as a valid frame")
                }
                // Cut inside the header line: legacy fallback territory.
                Ok(FrameRead::NotFramed(_)) => {
                    assert!(n <= full.iter().position(|&b| b == b'\n').unwrap())
                }
                Err(DurableError::Corrupt { .. }) => {}
                Err(e) => panic!("unexpected error at {n}: {e}"),
            }
        }
        fs::remove_file(&path).ok();
        fs::remove_file(&cut).ok();
    }

    #[test]
    fn bit_flip_never_validates() {
        let path = temp("flip_src");
        write_framed(&path, "ajax-test", 1, b"the quick brown fox").unwrap();
        let full = fs::read(&path).unwrap();
        let flipped = temp("flip_out");
        for (i, bit) in [(3usize, 0u8), (20, 3), (full.len() - 2, 7)] {
            let mut copy = full.clone();
            copy[i] ^= 1 << bit;
            fs::write(&flipped, &copy).unwrap();
            match read_framed(&flipped) {
                Ok(FrameRead::Framed { payload, .. }) => {
                    panic!("bit flip at byte {i} validated with payload {payload:?}")
                }
                Ok(FrameRead::NotFramed(_)) | Err(DurableError::Corrupt { .. }) => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        fs::remove_file(&path).ok();
        fs::remove_file(&flipped).ok();
    }

    #[test]
    fn trailing_junk_is_corrupt() {
        let path = temp("junk");
        write_framed(&path, "ajax-test", 1, b"payload").unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(b"extra");
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_framed(&path),
            Err(DurableError::Corrupt { .. })
        ));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn unframed_file_is_handed_back() {
        let path = temp("legacy");
        fs::write(&path, b"{\"some\":\"json\"}\nmore").unwrap();
        match read_framed(&path).unwrap() {
            FrameRead::NotFramed(bytes) => assert!(bytes.starts_with(b"{\"some\"")),
            other => panic!("expected NotFramed, got {other:?}"),
        }
        fs::remove_file(&path).ok();
    }

    #[test]
    fn commit_replaces_previous_generation() {
        let path = temp("replace");
        commit_bytes(&path, b"generation 1").unwrap();
        commit_bytes(&path, b"generation 2").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"generation 2");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_with_path() {
        let err = read_framed("/nonexistent/definitely/missing.ajx").unwrap_err();
        match err {
            DurableError::Io { path, .. } => {
                assert!(path.to_string_lossy().contains("missing.ajx"))
            }
            other => panic!("expected Io, got {other:?}"),
        }
        let shown = format!(
            "{}",
            read_framed("/nonexistent/definitely/missing.ajx").unwrap_err()
        );
        assert!(
            shown.contains("missing.ajx"),
            "display names the path: {shown}"
        );
    }
}
