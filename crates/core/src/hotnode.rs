//! The hot-node cache (thesis ch. 4).
//!
//! A *hot node* is a JavaScript function that performs a server call; a *hot
//! call* is one invocation of it, keyed by the function name plus its
//! rendered actual arguments (`StackInfo.getHotnodeInfo()` in the thesis).
//! The cache maps hot calls to the server content they fetched; a repeated
//! hot call is served from the cache, skipping the network round trip — the
//! crawler's answer to "events cannot be cached".

use ajax_dom::hash::FnvHashMap;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashSet};

/// One cached hot call.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CachedCall {
    /// The URL the call fetched (diagnostics + replay).
    pub url: String,
    /// The response body.
    pub body: String,
    /// How many times the cache served this entry.
    pub hits: u32,
}

/// Counters for the caching experiments (Figs. 7.5–7.7).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HotNodeStats {
    /// AJAX calls that actually reached the network.
    pub network_calls: u64,
    /// AJAX calls served from the hot-node cache.
    pub cache_hits: u64,
    /// Distinct hot nodes (functions) identified. Kept equal to
    /// `hot_functions.len()` whenever the name set is populated.
    pub hot_nodes: u64,
    /// The names behind `hot_nodes`. Merging two stats blocks unions these
    /// sets, so aggregating disjoint partitions counts each distinct
    /// function exactly once (summing or taking `max` of the counts alone
    /// is wrong as soon as partitions overlap or differ).
    pub hot_functions: BTreeSet<String>,
}

impl HotNodeStats {
    /// Total AJAX call attempts (network + cached).
    pub fn total_calls(&self) -> u64 {
        self.network_calls + self.cache_hits
    }

    /// Merges another stats block into this one. `hot_nodes` becomes the
    /// size of the unioned name set; when neither side carries names (e.g.
    /// hand-built counters) the counts are summed, which is exact for
    /// disjoint partitions.
    pub fn merge(&mut self, other: &HotNodeStats) {
        self.network_calls += other.network_calls;
        self.cache_hits += other.cache_hits;
        self.hot_functions
            .extend(other.hot_functions.iter().cloned());
        self.hot_nodes = if self.hot_functions.is_empty() {
            self.hot_nodes + other.hot_nodes
        } else {
            self.hot_functions.len() as u64
        };
    }
}

/// The hot-node cache of Table 4.4: `(hot node, parameters) → content`.
#[derive(Debug, Clone, Default)]
pub struct HotNodeCache {
    entries: FnvHashMap<String, CachedCall>,
    /// Names of functions identified as hot nodes (they contained an AJAX
    /// call) — the `hotNodes` set of Alg. 4.2.1, line 37.
    hot_functions: HashSet<String>,
    stats: HotNodeStats,
}

impl HotNodeCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a hot call. On a hit, bumps the hit counters and returns the
    /// cached body.
    pub fn lookup(&mut self, key: &str) -> Option<String> {
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.hits += 1;
                self.stats.cache_hits += 1;
                Some(entry.body.clone())
            }
            None => None,
        }
    }

    /// Peeks without touching counters.
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// True when `function` has been identified as a hot node — the
    /// `DebugFrameImpl.onEnter` check of §4.4.2.
    pub fn is_hot_function(&self, function: &str) -> bool {
        self.hot_functions.contains(function)
    }

    /// Names of all functions identified as hot nodes.
    pub fn hot_function_names(&self) -> impl Iterator<Item = &str> {
        self.hot_functions.iter().map(String::as_str)
    }

    /// Records a fresh hot call result fetched from the network.
    /// `function` is the hot node, `key` the `(function, args)` rendering.
    pub fn insert(&mut self, function: &str, key: String, url: String, body: String) {
        self.hot_functions.insert(function.to_string());
        if self.stats.hot_functions.insert(function.to_string()) {
            self.stats.hot_nodes += 1;
        }
        self.stats.network_calls += 1;
        self.entries.insert(key, CachedCall { url, body, hits: 0 });
    }

    /// Records a network call made while caching is *disabled* (the baseline
    /// crawler still counts its calls for the comparison experiments).
    pub fn record_uncached_call(&mut self) {
        self.stats.network_calls += 1;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &HotNodeStats {
        &self.stats
    }

    /// Number of distinct cached calls.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drains all `(url, body)` pairs for replay storage.
    pub fn fetch_records(&self) -> Vec<(String, String)> {
        let mut records: Vec<(String, String)> = self
            .entries
            .values()
            .map(|c| (c.url.clone(), c.body.clone()))
            .collect();
        records.sort();
        records.dedup();
        records
    }

    /// Clears entries but keeps statistics (fresh page, same accounting).
    pub fn clear_entries(&mut self) {
        self.entries.clear();
        self.hot_functions.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut cache = HotNodeCache::new();
        let key = "getUrl(\"/c?p=2\", true)";
        assert!(cache.lookup(key).is_none());
        cache.insert(
            "getUrl",
            key.to_string(),
            "/c?p=2".into(),
            "<p>page2</p>".into(),
        );
        assert_eq!(cache.lookup(key).as_deref(), Some("<p>page2</p>"));
        assert_eq!(cache.lookup(key).as_deref(), Some("<p>page2</p>"));
        let stats = cache.stats();
        assert_eq!(stats.network_calls, 1);
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.total_calls(), 3);
    }

    #[test]
    fn distinct_args_are_distinct_calls() {
        let mut cache = HotNodeCache::new();
        cache.insert(
            "getUrl",
            "getUrl(\"/c?p=2\")".into(),
            "/c?p=2".into(),
            "two".into(),
        );
        assert!(cache.lookup("getUrl(\"/c?p=3\")").is_none());
        assert!(cache.contains("getUrl(\"/c?p=2\")"));
    }

    #[test]
    fn hot_function_registry() {
        let mut cache = HotNodeCache::new();
        assert!(!cache.is_hot_function("getUrl"));
        cache.insert("getUrl", "k1".into(), "/a".into(), "x".into());
        cache.insert("getUrl", "k2".into(), "/b".into(), "y".into());
        assert!(cache.is_hot_function("getUrl"));
        assert_eq!(cache.stats().hot_nodes, 1, "one distinct hot node");
    }

    #[test]
    fn fetch_records_sorted_dedup() {
        let mut cache = HotNodeCache::new();
        cache.insert("f", "k1".into(), "/b".into(), "y".into());
        cache.insert("f", "k2".into(), "/a".into(), "x".into());
        let recs = cache.fetch_records();
        assert_eq!(recs[0].0, "/a");
        assert_eq!(recs[1].0, "/b");
    }

    #[test]
    fn uncached_calls_counted() {
        let mut cache = HotNodeCache::new();
        cache.record_uncached_call();
        cache.record_uncached_call();
        assert_eq!(cache.stats().network_calls, 2);
        assert!(cache.is_empty());
    }

    fn stats_with(network_calls: u64, cache_hits: u64, functions: &[&str]) -> HotNodeStats {
        HotNodeStats {
            network_calls,
            cache_hits,
            hot_nodes: functions.len() as u64,
            hot_functions: functions.iter().map(|f| f.to_string()).collect(),
        }
    }

    #[test]
    fn stats_merge_unions_hot_functions() {
        // Disjoint partitions: the old `max` semantics reported 2 here.
        let mut a = stats_with(3, 1, &["fetchA"]);
        let b = stats_with(2, 4, &["fetchB", "fetchC"]);
        a.merge(&b);
        assert_eq!(a.network_calls, 5);
        assert_eq!(a.cache_hits, 5);
        assert_eq!(a.hot_nodes, 3, "disjoint hot nodes must sum");
        assert_eq!(a.hot_functions.len(), 3);
    }

    #[test]
    fn stats_merge_dedups_shared_hot_functions() {
        let mut a = stats_with(3, 0, &["getUrl", "fetchA"]);
        let b = stats_with(2, 0, &["getUrl", "fetchB"]);
        a.merge(&b);
        assert_eq!(a.hot_nodes, 3, "shared function counted once");
    }

    #[test]
    fn stats_merge_without_names_sums_counts() {
        let mut a = HotNodeStats {
            hot_nodes: 1,
            ..HotNodeStats::default()
        };
        let b = HotNodeStats {
            hot_nodes: 2,
            ..HotNodeStats::default()
        };
        a.merge(&b);
        assert_eq!(a.hot_nodes, 3, "nameless counters assume disjointness");
    }
}
