//! Unit tests for the browser embedding (the `PageHost` wiring of DOM, JS
//! and XHR) — exercised directly, below the crawler.

use crate::browser::{Browser, CrawlEnv, EventOutcome};
use crate::crawler::{CpuCostModel, RetryPolicy};
use crate::hotnode::HotNodeCache;
use ajax_net::server::{FnServer, Request, Response};
use ajax_net::{LatencyModel, NetClient, Url};
use std::sync::Arc;

fn echo_server() -> Arc<FnServer<impl Fn(&Request) -> Response + Send + Sync>> {
    Arc::new(FnServer(|req: &Request| match req.url.path.as_str() {
        "/data" => Response::html(format!(
            "<p>payload {}</p>",
            req.url.param("p").unwrap_or("?")
        )),
        "/missing" => Response::not_found(),
        _ => Response::not_found(),
    }))
}

/// Runs `f` with a fresh env around a zero-latency client.
fn with_env<T>(f: impl FnOnce(&mut CrawlEnv<'_>) -> T) -> T {
    let mut net = NetClient::new(echo_server(), LatencyModel::Zero);
    let mut cache = HotNodeCache::new();
    let costs = CpuCostModel::free();
    let mut trace = Vec::new();
    let mut rec = ajax_obs::Recorder::Off;
    let mut env = CrawlEnv::new(
        &mut net,
        &mut cache,
        true,
        &costs,
        RetryPolicy::none(),
        &mut trace,
        &mut rec,
    );
    f(&mut env)
}

fn load(html: &str, env: &mut CrawlEnv<'_>) -> Browser {
    let (browser, errors) = Browser::load(Url::parse("http://x/page"), html, 1_000_000, env);
    assert!(errors.is_empty(), "load errors: {errors:?}");
    browser
}

#[test]
fn document_get_element_by_id_and_inner_html() {
    with_env(|env| {
        let mut browser = load(
            "<html><head><script>\
             function swap() { document.getElementById('a').innerHTML = '<b>new</b>'; }\
             </script></head><body><div id=\"a\">old</div></body></html>",
            env,
        );
        let before = browser.doc().document_text();
        assert!(before.contains("old"));
        let outcome = browser.fire_event("swap()", env);
        assert_eq!(outcome.js_error, None);
        assert!(browser.doc().document_text().contains("new"));
        assert!(!browser.doc().document_text().contains("old"));
    });
}

#[test]
fn xhr_full_flow_updates_dom() {
    with_env(|env| {
        let mut browser = load(
            "<html><head><script>\
             function fetchIt(p) {\
               var xhr = new XMLHttpRequest();\
               xhr.open('GET', '/data?p=' + p, false);\
               xhr.send(null);\
               document.getElementById('box').innerHTML = xhr.responseText;\
               return xhr.status;\
             }\
             </script></head><body><div id=\"box\"></div></body></html>",
            env,
        );
        let outcome = browser.fire_event("fetchIt(7)", env);
        assert_eq!(outcome.js_error, None);
        assert_eq!(outcome.network_calls, 1);
        assert!(browser.doc().document_text().contains("payload 7"));
    });
}

#[test]
fn hot_node_cache_serves_second_call() {
    with_env(|env| {
        let mut browser = load(
            "<html><head><script>\
             function go(p) {\
               var xhr = new XMLHttpRequest();\
               xhr.open('GET', '/data?p=' + p, false);\
               xhr.send(null);\
               document.getElementById('box').innerHTML = xhr.responseText;\
             }\
             </script></head><body><div id=\"box\"></div></body></html>",
            env,
        );
        let first = browser.fire_event("go(1)", env);
        assert_eq!((first.network_calls, first.cache_hits), (1, 0));
        let second = browser.fire_event("go(1)", env);
        assert_eq!(
            (second.network_calls, second.cache_hits),
            (0, 1),
            "same (function, args) key must hit the cache"
        );
        let third = browser.fire_event("go(2)", env);
        assert_eq!((third.network_calls, third.cache_hits), (1, 0));
        assert!(env.cache.is_hot_function("go"));
    });
}

#[test]
fn snapshot_restore_roundtrip_dom_and_globals() {
    with_env(|env| {
        let mut browser = load(
            "<html><head><script>var counter = 0;\
             function bump() {\
               counter = counter + 1;\
               document.getElementById('n').innerHTML = '' + counter;\
             }</script></head><body><div id=\"n\">0</div></body></html>",
            env,
        );
        let snapshot = browser.snapshot();
        let hash0 = browser.state_hash(env);
        browser.fire_event("bump()", env);
        browser.fire_event("bump()", env);
        assert!(browser.doc().document_text().contains('2'));
        browser.restore(&snapshot);
        assert_eq!(browser.state_hash(env), hash0);
        // The JS global must be rolled back too, or the next bump would show 3.
        browser.fire_event("bump()", env);
        assert!(browser.doc().document_text().contains('1'));
    });
}

#[test]
fn send_before_open_is_host_error() {
    with_env(|env| {
        let mut browser = load(
            "<html><head><script>\
             function bad() { var x = new XMLHttpRequest(); x.send(null); }\
             </script></head><body></body></html>",
            env,
        );
        let outcome = browser.fire_event("bad()", env);
        assert!(outcome.js_error.is_some());
        assert_eq!(outcome.network_calls, 0);
    });
}

#[test]
fn xhr_status_visible_to_script() {
    with_env(|env| {
        let mut browser = load(
            "<html><head><script>\
             function probe(path) {\
               var xhr = new XMLHttpRequest();\
               xhr.open('GET', path, false);\
               xhr.send(null);\
               document.getElementById('s').innerHTML = '' + xhr.status;\
             }</script></head><body><div id=\"s\"></div></body></html>",
            env,
        );
        browser.fire_event("probe('/missing')", env);
        assert!(browser.doc().document_text().contains("404"));
        browser.fire_event("probe('/data?p=1')", env);
        assert!(browser.doc().document_text().contains("200"));
    });
}

#[test]
fn element_properties_readable() {
    with_env(|env| {
        let mut browser = load(
            "<html><head><script>\
             function read() {\
               var el = document.getElementById('tag');\
               return el.tagName + '/' + el.id + '/' + el.getAttribute('data-x');\
             }</script></head><body><em id=\"tag\" data-x=\"42\">t</em></body></html>",
            env,
        );
        // fire_event discards return values; use interp via a DOM write.
        browser.fire_event("document.getElementById('tag').innerHTML = read()", env);
        let text = browser.doc().document_text();
        assert!(text.contains("EM/tag/42"), "{text}");
    });
}

#[test]
fn outcome_attempted_ajax() {
    let quiet = EventOutcome::default();
    assert!(!quiet.attempted_ajax());
    let networked = EventOutcome {
        network_calls: 1,
        ..EventOutcome::default()
    };
    assert!(networked.attempted_ajax());
    let cached = EventOutcome {
        cache_hits: 2,
        ..EventOutcome::default()
    };
    assert!(cached.attempted_ajax());
}

#[test]
fn trace_interleaves_cpu_and_net() {
    let mut net = NetClient::new(echo_server(), LatencyModel::Fixed(500));
    let mut cache = HotNodeCache::new();
    let costs = CpuCostModel {
        parse_nanos_per_byte: 1_000, // 1 µs per byte so CPU shows up.
        ..CpuCostModel::free()
    };
    let mut trace = Vec::new();
    let mut rec = ajax_obs::Recorder::Off;
    {
        let mut env = CrawlEnv::new(
            &mut net,
            &mut cache,
            true,
            &costs,
            RetryPolicy::none(),
            &mut trace,
            &mut rec,
        );
        let mut browser = load(
            "<html><head><script>\
             function go() {\
               var xhr = new XMLHttpRequest();\
               xhr.open('GET', '/data?p=1', false);\
               xhr.send(null);\
               document.getElementById('b').innerHTML = xhr.responseText;\
             }</script></head><body><div id=\"b\">x</div></body></html>",
            &mut env,
        );
        browser.fire_event("go()", &mut env);
        env.flush_trace();
    }
    use ajax_net::sched::Segment;
    assert!(trace.iter().any(|s| matches!(s, Segment::Cpu(_))));
    assert!(trace.iter().any(|s| matches!(s, Segment::Net(500))));
}
