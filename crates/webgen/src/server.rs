//! The VidShare HTTP server: renders watch pages and AJAX comment fragments.
//!
//! The page JavaScript is shaped after the thesis' YouTube excerpt (§4.4.1):
//! every comment-navigation event funnels through
//! `getUrlXMLResponseAndFillDiv(url, div_id)`, the single function that
//! performs the `XMLHttpRequest` — the site's one *hot node*.

use crate::spec::{video_meta, VidShareSpec};
use crate::text::{comment_author, comment_text};
use ajax_net::server::{Request, Response, Server};

/// The synthetic video site, exposed through `ajax_net::Server`.
///
/// Routes:
/// * `/watch?v=<id>` — the full watch page (title, description, related
///   hyperlinks, inline first comment page, pagination controls, script),
/// * `/comments?v=<id>&p=<n>` — the comment fragment AJAX endpoint,
/// * anything else — 404.
#[derive(Debug, Clone)]
pub struct VidShareServer {
    spec: VidShareSpec,
}

impl VidShareServer {
    /// Creates a server for `spec`.
    pub fn new(spec: VidShareSpec) -> Self {
        Self { spec }
    }

    /// The site spec.
    pub fn spec(&self) -> &VidShareSpec {
        &self.spec
    }

    fn parse_video_id(&self, value: Option<&str>) -> Option<u32> {
        let id: u32 = value?.parse().ok()?;
        (id < self.spec.num_videos).then_some(id)
    }

    /// Renders the navigation controls shown *inside* the comment box for
    /// `page` of `total` pages: prev / direct jumps / next — several distinct
    /// events that collide on the same underlying hot call, exactly the
    /// structure the hot-node cache exploits.
    fn nav_html(&self, page: u32, total: u32) -> String {
        if total <= 1 {
            return String::new();
        }
        let mut nav = String::from("<div id=\"comment_nav\">");
        if page > 1 {
            nav.push_str(
                "<span id=\"prevArrow\" class=\"nav\" onclick=\"prevPage()\">previous</span>",
            );
        }
        // Direct jumps: a window of up to three pages around the current one
        // (YouTube showed "direct jumps to the immediately few previous and
        // next pages", §7.1.1).
        let window_start = page.saturating_sub(1).max(1);
        let window_end = (page + 2).min(total);
        for p in window_start..=window_end {
            if p == page {
                nav.push_str(&format!("<span class=\"current\">{p}</span>"));
            } else {
                nav.push_str(&format!(
                    "<span class=\"pagelink\" onclick=\"gotoPage({p})\">{p}</span>"
                ));
            }
        }
        if page < total {
            nav.push_str("<span id=\"nextArrow\" class=\"nav\" onclick=\"nextPage()\">next</span>");
        }
        nav.push_str("</div>");
        nav
    }

    /// Renders the comment fragment for `page` (1-based) of `video` — the
    /// body served by the `/comments` AJAX endpoint and inlined for page 1.
    pub fn comments_fragment(&self, video: u32, page: u32) -> String {
        let meta = video_meta(&self.spec, video);
        let total = meta.comment_pages;
        let page = page.clamp(1, total);
        let mut html = format!("<div class=\"comments\" data-page=\"{page}\">");
        for slot in 0..self.spec.comments_per_page {
            let author = comment_author(&self.spec, video, page, slot);
            let text = comment_text(&self.spec, video, page, slot);
            html.push_str(&format!(
                "<div class=\"comment\"><span class=\"author\">{author}</span>\
                 <p class=\"ctext\">{text}</p></div>"
            ));
        }
        html.push_str("</div>");
        html.push_str(&self.nav_html(page, total));
        html
    }

    /// The page JavaScript — structurally the thesis' YouTube code.
    fn page_script(&self, video: u32, total_pages: u32) -> String {
        format!(
            r#"
var currentPage = 1;
var totalPages = {total_pages};
function showLoading(div_id) {{
    var box = document.getElementById(div_id);
    box.innerHTML = '<p class="loading">Loading...</p>';
}}
function getUrlXMLResponseAndFillDiv(url, div_id) {{
    var xmlHttpReq = new XMLHttpRequest();
    xmlHttpReq.open("GET", url, false);
    xmlHttpReq.send(null);
    var box = document.getElementById(div_id);
    box.innerHTML = xmlHttpReq.responseText;
}}
function urchinTracker(tag) {{
    var tracked = tag;
    return tracked;
}}
function gotoPage(p) {{
    if (p < 1 || p > totalPages) {{
        return;
    }}
    showLoading('recent_comments');
    getUrlXMLResponseAndFillDiv('/comments?v={video}&p=' + p, 'recent_comments');
    urchinTracker('comments-page-' + p);
    currentPage = p;
}}
function nextPage() {{ gotoPage(currentPage + 1); }}
function prevPage() {{ gotoPage(currentPage - 1); }}
function highlightTitle() {{ urchinTracker('title-hover'); }}
function initPage() {{ urchinTracker('page-load'); }}
"#
        )
    }

    /// Renders the full watch page for `video`.
    pub fn watch_page(&self, video: u32) -> String {
        let meta = video_meta(&self.spec, video);
        let mut related = String::new();
        for rel in &meta.related {
            let rel_meta = video_meta(&self.spec, *rel);
            related.push_str(&format!(
                "<li><a href=\"/watch?v={rel}\">{}</a></li>",
                rel_meta.title
            ));
        }
        let first_comments = self.comments_fragment(video, 1);
        let script = self.page_script(video, meta.comment_pages);
        format!(
            "<!DOCTYPE html>\n<html><head><title>{title} - VidShare</title>\
             <script type=\"text/javascript\">{script}</script></head>\
             <body onload=\"initPage()\">\
             <h1 id=\"video_title\" onmouseover=\"highlightTitle()\">{title}</h1>\
             <div id=\"player\">[video player placeholder]</div>\
             <div id=\"description\">{description}</div>\
             <div id=\"uploader\">uploaded by {uploader}</div>\
             <div id=\"related\"><ul>{related}</ul></div>\
             <div id=\"recent_comments\">{first_comments}</div>\
             </body></html>",
            title = meta.title,
            description = meta.description,
            uploader = meta.uploader,
        )
    }
}

impl Server for VidShareServer {
    fn handle(&self, request: &Request) -> Response {
        match request.url.path.as_str() {
            "/watch" => match self.parse_video_id(request.url.param("v")) {
                Some(video) => Response::html(self.watch_page(video)),
                None => Response::not_found(),
            },
            "/comments" => {
                let video = self.parse_video_id(request.url.param("v"));
                let page: Option<u32> = request.url.param("p").and_then(|p| p.parse().ok());
                match (video, page) {
                    (Some(video), Some(page)) if page >= 1 => {
                        let total = video_meta(&self.spec, video).comment_pages;
                        if page > total {
                            Response::not_found()
                        } else {
                            Response::html(self.comments_fragment(video, page))
                        }
                    }
                    _ => Response::not_found(),
                }
            }
            _ => Response::not_found(),
        }
    }

    fn name(&self) -> &str {
        "vidshare"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajax_dom::parse_document;
    use ajax_net::server::Request;

    fn server() -> VidShareServer {
        VidShareServer::new(VidShareSpec::small(50))
    }

    #[test]
    fn watch_page_parses_and_has_structure() {
        let s = server();
        let resp = s.handle(&Request::get("/watch?v=3"));
        assert!(resp.is_ok());
        let mut doc = parse_document(&resp.body);
        assert!(doc.get_element_by_id("video_title").is_some());
        assert!(doc.get_element_by_id("recent_comments").is_some());
        assert!(!doc.script_sources().is_empty());
        assert!(!doc.hyperlinks().is_empty(), "related links present");
    }

    #[test]
    fn first_page_comments_inlined() {
        let s = server();
        let resp = s.handle(&Request::get("/watch?v=3"));
        let first_comment = crate::text::comment_text(s.spec(), 3, 1, 0);
        assert!(
            resp.body.contains(&first_comment),
            "page must inline first comment page"
        );
    }

    #[test]
    fn comments_endpoint_serves_fragments() {
        let s = server();
        // Find a video with ≥ 2 pages.
        let video = (0..50)
            .find(|&v| video_meta(s.spec(), v).comment_pages >= 2)
            .expect("some multi-page video");
        let resp = s.handle(&Request::get(format!("/comments?v={video}&p=2").as_str()));
        assert!(resp.is_ok());
        assert!(resp.body.contains("data-page=\"2\""));
        let expected = crate::text::comment_text(s.spec(), video, 2, 0);
        assert!(resp.body.contains(&expected));
    }

    #[test]
    fn nav_events_funnel_into_goto_page() {
        let s = server();
        let video = (0..50)
            .find(|&v| video_meta(s.spec(), v).comment_pages >= 3)
            .expect("some 3-page video");
        let frag = s.comments_fragment(video, 2);
        assert!(frag.contains("onclick=\"prevPage()\""));
        assert!(frag.contains("onclick=\"nextPage()\""));
        assert!(frag.contains("onclick=\"gotoPage("));
    }

    #[test]
    fn single_page_video_has_no_nav() {
        let s = server();
        let video = (0..50)
            .find(|&v| video_meta(s.spec(), v).comment_pages == 1)
            .expect("some 1-page video");
        let frag = s.comments_fragment(video, 1);
        assert!(!frag.contains("comment_nav"));
    }

    #[test]
    fn errors_for_bad_requests() {
        let s = server();
        assert_eq!(s.handle(&Request::get("/watch?v=999999")).status, 404);
        assert_eq!(s.handle(&Request::get("/watch")).status, 404);
        assert_eq!(s.handle(&Request::get("/bogus")).status, 404);
        assert_eq!(s.handle(&Request::get("/comments?v=1&p=0")).status, 404);
        assert_eq!(s.handle(&Request::get("/comments?v=1&p=99")).status, 404);
        assert_eq!(s.handle(&Request::get("/comments?v=1")).status, 404);
    }

    #[test]
    fn responses_are_pure_functions_of_requests() {
        let s = server();
        let a = s.handle(&Request::get("/watch?v=7"));
        let b = s.handle(&Request::get("/watch?v=7"));
        assert_eq!(a, b, "snapshot isolation / statelessness (§4.3)");
    }

    #[test]
    fn script_contains_hot_node_structure() {
        let s = server();
        let body = s.handle(&Request::get("/watch?v=1")).body;
        assert!(body.contains("getUrlXMLResponseAndFillDiv"));
        assert!(body.contains("new XMLHttpRequest()"));
        assert!(body.contains("showLoading"));
        assert!(body.contains("urchinTracker"));
    }
}
