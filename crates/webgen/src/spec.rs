//! The site specification and derived per-video metadata.

use ajax_dom::hash::Fnv64;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of a VidShare site. Everything downstream (pages, comments,
/// link graph, query ground truth) is a pure function of this value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VidShareSpec {
    /// Master seed; change it to get a different but equally-shaped site.
    pub seed: u64,
    /// Number of videos (the thesis' YouTube10000 uses 10 000).
    pub num_videos: u32,
    /// Maximum number of comment pages per video, counting the initial one
    /// (the thesis caps additional pages at 10 ⇒ 11 total).
    pub max_comment_pages: u32,
    /// Comments shown per page (YouTube showed 10).
    pub comments_per_page: u32,
    /// Zipf skew of the comment-page-count distribution; ~0.78 yields the
    /// thesis' ≈4.16 states/page average with the Fig 7.1 shape (mode 1).
    pub page_count_skew: f64,
    /// Outgoing related-video links per watch page.
    pub related_links: u32,
    /// Probability that a comment carries one of the workload query phrases.
    pub phrase_rate: f64,
    /// Plant the §1.1 "Morcheeba" showcase as video 0.
    pub showcase: bool,
}

impl Default for VidShareSpec {
    fn default() -> Self {
        Self {
            seed: 0x5EED_CAFE,
            num_videos: 10_000,
            max_comment_pages: 11,
            comments_per_page: 10,
            page_count_skew: 0.78,
            related_links: 8,
            phrase_rate: 0.18,
            showcase: true,
        }
    }
}

impl VidShareSpec {
    /// A small site for tests and examples.
    pub fn small(num_videos: u32) -> Self {
        Self {
            num_videos,
            ..Self::default()
        }
    }

    /// Derives a sub-seed for a named purpose + ids, so the different random
    /// streams (page counts, text, links…) are independent.
    pub fn sub_seed(&self, purpose: &str, ids: &[u64]) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.seed);
        h.write_str(purpose);
        for &id in ids {
            h.write_u64(id);
        }
        h.finish()
    }

    /// An RNG for a named purpose + ids.
    pub fn rng(&self, purpose: &str, ids: &[u64]) -> StdRng {
        StdRng::seed_from_u64(self.sub_seed(purpose, ids))
    }

    /// The canonical URL of a video's watch page.
    pub fn watch_url(&self, video: u32) -> String {
        format!("http://vidshare.example/watch?v={video}")
    }
}

/// Derived metadata of one video.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VideoMeta {
    pub id: u32,
    pub title: String,
    pub description: String,
    pub uploader: String,
    /// Total number of comment pages (≥ 1).
    pub comment_pages: u32,
    /// Related video ids (the outgoing hyperlinks).
    pub related: Vec<u32>,
}

/// Samples from the truncated Zipf distribution over `1..=max` with skew `s`.
fn zipf_sample(rng: &mut StdRng, s: f64, max: u32) -> u32 {
    debug_assert!(max >= 1);
    let weights: Vec<f64> = (1..=max).map(|k| (k as f64).powf(-s)).collect();
    let total: f64 = weights.iter().sum();
    let mut x: f64 = rng.random_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return i as u32 + 1;
        }
        x -= w;
    }
    max
}

/// Expected value of the truncated Zipf over `1..=max` with skew `s`.
pub fn zipf_mean(s: f64, max: u32) -> f64 {
    let norm: f64 = (1..=max).map(|k| (k as f64).powf(-s)).sum();
    let num: f64 = (1..=max).map(|k| (k as f64).powf(1.0 - s)).sum();
    num / norm
}

/// Computes the metadata of video `id` under `spec`. Pure and deterministic.
pub fn video_meta(spec: &VidShareSpec, id: u32) -> VideoMeta {
    let mut rng = spec.rng("video-meta", &[id as u64]);

    let comment_pages = if spec.showcase && id == 0 {
        // The showcase needs at least two comment pages (§1.1: the singer's
        // name is on the second page).
        3
    } else {
        zipf_sample(&mut rng, spec.page_count_skew, spec.max_comment_pages)
    };

    let (title, description, uploader) = if spec.showcase && id == 0 {
        (
            "Morcheeba Enjoy the Ride".to_string(),
            "the newest video of the band with a new unknown singer".to_string(),
            "morcheeba_fan".to_string(),
        )
    } else {
        crate::text::video_text(spec, id, &mut rng)
    };

    // Related links: a mix of near neighbours (keeps the graph locally dense)
    // and long-range jumps (keeps it connected and small-world, so a
    // breadth-first precrawl from video 0 reaches the whole site).
    let n = spec.num_videos.max(1);
    let mut related = Vec::with_capacity(spec.related_links as usize);
    for slot in 0..spec.related_links {
        let target = if slot % 2 == 0 {
            // Near: within a window of ±32.
            let offset = rng.random_range(1..=32u32);
            if rng.random_bool(0.5) {
                (id + offset) % n
            } else {
                (id + n - (offset % n)) % n
            }
        } else {
            rng.random_range(0..n)
        };
        if target != id && !related.contains(&target) {
            related.push(target);
        }
    }
    // Guarantee forward progress for the precrawler even on tiny sites.
    if related.is_empty() && n > 1 {
        related.push((id + 1) % n);
    }

    VideoMeta {
        id,
        title,
        description,
        uploader,
        comment_pages,
        related,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let spec = VidShareSpec::default();
        let a = video_meta(&spec, 42);
        let b = video_meta(&spec, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_videos_differ() {
        let spec = VidShareSpec::default();
        assert_ne!(video_meta(&spec, 1).title, video_meta(&spec, 2).title);
    }

    #[test]
    fn page_counts_within_bounds() {
        let spec = VidShareSpec::small(500);
        for id in 0..500 {
            let m = video_meta(&spec, id);
            assert!(
                (1..=spec.max_comment_pages).contains(&m.comment_pages),
                "video {id} has {} pages",
                m.comment_pages
            );
        }
    }

    #[test]
    fn page_count_mean_matches_thesis() {
        // Thesis: 41 572 states over 10 000 pages ⇒ mean ≈ 4.157.
        let mean = zipf_mean(0.78, 11);
        assert!(
            (3.8..=4.5).contains(&mean),
            "zipf(0.78, 11) mean = {mean}, expected ≈ 4.16"
        );

        let spec = VidShareSpec::small(2_000);
        let total: u64 = (0..2_000)
            .map(|id| video_meta(&spec, id).comment_pages as u64)
            .sum();
        let empirical = total as f64 / 2_000.0;
        assert!(
            (3.5..=4.8).contains(&empirical),
            "empirical mean = {empirical}"
        );
    }

    #[test]
    fn mode_is_one_page() {
        let spec = VidShareSpec::small(2_000);
        let mut histogram = vec![0u32; 12];
        for id in 0..2_000 {
            histogram[video_meta(&spec, id).comment_pages as usize] += 1;
        }
        let mode = histogram
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .map(|(k, _)| k)
            .unwrap();
        assert_eq!(
            mode, 1,
            "Fig 7.1: most videos have one comment page; histogram={histogram:?}"
        );
    }

    #[test]
    fn showcase_video_planted() {
        let spec = VidShareSpec::default();
        let m = video_meta(&spec, 0);
        assert_eq!(m.title, "Morcheeba Enjoy the Ride");
        assert!(m.comment_pages >= 2);
    }

    #[test]
    fn showcase_disabled() {
        let spec = VidShareSpec {
            showcase: false,
            ..VidShareSpec::default()
        };
        assert_ne!(video_meta(&spec, 0).title, "Morcheeba Enjoy the Ride");
    }

    #[test]
    fn related_links_valid() {
        let spec = VidShareSpec::small(100);
        for id in 0..100 {
            let m = video_meta(&spec, id);
            assert!(!m.related.is_empty());
            for &r in &m.related {
                assert!(r < 100);
                assert_ne!(r, id, "no self links");
            }
            // No duplicates.
            let mut sorted = m.related.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), m.related.len());
        }
    }

    #[test]
    fn graph_is_reachable_from_zero() {
        let spec = VidShareSpec::small(300);
        let mut seen = vec![false; 300];
        let mut queue = std::collections::VecDeque::from([0u32]);
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = queue.pop_front() {
            for r in video_meta(&spec, v).related {
                if !seen[r as usize] {
                    seen[r as usize] = true;
                    count += 1;
                    queue.push_back(r);
                }
            }
        }
        assert!(count >= 295, "BFS from 0 reached only {count}/300 videos");
    }

    #[test]
    fn sub_seed_streams_independent() {
        let spec = VidShareSpec::default();
        assert_ne!(spec.sub_seed("a", &[1]), spec.sub_seed("b", &[1]));
        assert_ne!(spec.sub_seed("a", &[1]), spec.sub_seed("a", &[2]));
    }
}
