//! **NewsShare** — a second synthetic AJAX application, structurally
//! different from VidShare.
//!
//! The thesis evaluates on a single site (YouTube) and conjectures that
//! "for applications with more than one hot node, we expect even better
//! improvement in performance" (§7.3). NewsShare exists to test exactly
//! that: a news portal page with **two independent AJAX regions**, each
//! driven by its own server-fetching function (two hot nodes):
//!
//! * a **section tab bar** (`world`, `tech`, `sports`, …) whose tabs load a
//!   section panel via `loadSection(name)` → `fetchSection(url, div)`;
//! * a **top-stories box** paginated via `moreStories(k)` →
//!   `fetchStories(url, div)`.
//!
//! The two regions mutate two different `<div>`s, so the page's state space
//! is the *product* of (section × stories-page) — a much denser transition
//! graph than VidShare's linear comment chain, exercising duplicate
//! detection and the state cap harder.

use crate::spec::VidShareSpec;
use crate::text;
use ajax_net::server::{Request, Response, Server};
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Parameters of a NewsShare site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NewsSpec {
    pub seed: u64,
    /// Number of news pages.
    pub num_pages: u32,
    /// Section tabs per page.
    pub sections: Vec<String>,
    /// Story pages in the top-stories box.
    pub story_pages: u32,
    /// Headlines per section panel / stories page.
    pub items_per_panel: u32,
    /// Hyperlinks to other news pages.
    pub related_links: u32,
}

impl Default for NewsSpec {
    fn default() -> Self {
        Self {
            seed: 0xBEEF_FEED,
            num_pages: 500,
            sections: ["world", "tech", "sports"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            story_pages: 3,
            items_per_panel: 6,
            related_links: 6,
        }
    }
}

impl NewsSpec {
    /// A small site for tests.
    pub fn small(num_pages: u32) -> Self {
        Self {
            num_pages,
            ..Self::default()
        }
    }

    /// The canonical URL of a news page.
    pub fn page_url(&self, page: u32) -> String {
        format!("http://newsshare.example/news?p={page}")
    }

    fn text_spec(&self) -> VidShareSpec {
        VidShareSpec {
            seed: self.seed,
            showcase: false,
            ..VidShareSpec::default()
        }
    }

    /// Deterministic headline text for `(page, region, slot)`.
    pub fn headline(&self, page: u32, region: &str, slot: u32) -> String {
        let spec = self.text_spec();
        let mut rng = spec.rng(
            "news-headline",
            &[page as u64, ajax_dom::fnv64_str(region), slot as u64],
        );
        let mut words = Vec::new();
        for _ in 0..rng.random_range(5..11usize) {
            words.push(crate::text::VOCAB[rng.random_range(0..text::VOCAB.len())]);
        }
        format!("{region} {}", words.join(" "))
    }

    /// Related page ids.
    pub fn related(&self, page: u32) -> Vec<u32> {
        let spec = self.text_spec();
        let mut rng = spec.rng("news-related", &[page as u64]);
        let n = self.num_pages.max(1);
        let mut out = Vec::new();
        for _ in 0..self.related_links {
            let target = rng.random_range(0..n);
            if target != page && !out.contains(&target) {
                out.push(target);
            }
        }
        if out.is_empty() && n > 1 {
            out.push((page + 1) % n);
        }
        out
    }
}

/// The NewsShare server.
#[derive(Debug, Clone)]
pub struct NewsShareServer {
    spec: NewsSpec,
}

impl NewsShareServer {
    /// Creates a server for `spec`.
    pub fn new(spec: NewsSpec) -> Self {
        Self { spec }
    }

    /// The site spec.
    pub fn spec(&self) -> &NewsSpec {
        &self.spec
    }

    /// Renders a section panel fragment.
    pub fn section_fragment(&self, page: u32, section: &str) -> String {
        let mut html = format!("<div class=\"panel\" data-section=\"{section}\">");
        for slot in 0..self.spec.items_per_panel {
            html.push_str(&format!(
                "<p class=\"headline\">{}</p>",
                self.spec.headline(page, section, slot)
            ));
        }
        html.push_str("</div>");
        html
    }

    /// Renders a top-stories fragment (with its own pagination controls —
    /// the second AJAX region's events live inside the region, like
    /// VidShare's comment nav).
    pub fn stories_fragment(&self, page: u32, k: u32) -> String {
        let total = self.spec.story_pages;
        let k = k.clamp(1, total);
        let mut html = format!("<div class=\"stories\" data-k=\"{k}\">");
        for slot in 0..self.spec.items_per_panel {
            html.push_str(&format!(
                "<p class=\"story\">{}</p>",
                self.spec.headline(page, &format!("stories{k}"), slot)
            ));
        }
        html.push_str("</div><div id=\"story_nav\">");
        if k > 1 {
            html.push_str(&format!(
                "<span class=\"snav\" onclick=\"moreStories({})\">newer</span>",
                k - 1
            ));
        }
        if k < total {
            html.push_str(&format!(
                "<span class=\"snav\" onclick=\"moreStories({})\">older</span>",
                k + 1
            ));
        }
        html.push_str("</div>");
        html
    }

    fn page_script(&self, page: u32) -> String {
        format!(
            r#"
var currentStories = 1;
var sectionHistory = [];
function fetchSection(url, div_id) {{
    var xhr = new XMLHttpRequest();
    xhr.open("GET", url, false);
    xhr.send(null);
    document.getElementById(div_id).innerHTML = xhr.responseText;
}}
function fetchStories(url, div_id) {{
    var xhr = new XMLHttpRequest();
    xhr.open("GET", url, false);
    xhr.send(null);
    document.getElementById(div_id).innerHTML = xhr.responseText;
}}
function loadSection(name) {{
    sectionHistory.push(name);
    fetchSection('/section?p={page}&s=' + name, 'section_panel');
}}
function moreStories(k) {{
    if (k < 1) {{ return; }}
    fetchStories('/stories?p={page}&k=' + k, 'top_stories');
    currentStories = k;
}}
function initNews() {{ var boot = sectionHistory.length; return boot; }}
"#
        )
    }

    /// Renders the full news page.
    pub fn news_page(&self, page: u32) -> String {
        let spec = &self.spec;
        let mut tabs = String::new();
        for section in &spec.sections {
            tabs.push_str(&format!(
                "<span class=\"tab\" onclick=\"loadSection('{section}')\">{section}</span>"
            ));
        }
        let mut related = String::new();
        for rel in spec.related(page) {
            related.push_str(&format!(
                "<li><a href=\"/news?p={rel}\">{}</a></li>",
                spec.headline(rel, "front", 0)
            ));
        }
        format!(
            "<!DOCTYPE html>\n<html><head><title>NewsShare page {page}</title>\
             <script type=\"text/javascript\">{script}</script></head>\
             <body onload=\"initNews()\">\
             <h1 id=\"masthead\">NewsShare daily edition {page}</h1>\
             <div id=\"tabs\">{tabs}</div>\
             <div id=\"section_panel\">{first_section}</div>\
             <div id=\"top_stories\">{first_stories}</div>\
             <div id=\"related\"><ul>{related}</ul></div>\
             </body></html>",
            script = self.page_script(page),
            first_section = self.section_fragment(page, &spec.sections[0]),
            first_stories = self.stories_fragment(page, 1),
        )
    }
}

impl Server for NewsShareServer {
    fn handle(&self, request: &Request) -> Response {
        let page: Option<u32> = request
            .url
            .param("p")
            .and_then(|p| p.parse().ok())
            .filter(|p| *p < self.spec.num_pages);
        match (request.url.path.as_str(), page) {
            ("/news", Some(page)) => Response::html(self.news_page(page)),
            ("/section", Some(page)) => match request.url.param("s") {
                Some(section) if self.spec.sections.iter().any(|s| s == section) => {
                    Response::html(self.section_fragment(page, section))
                }
                _ => Response::not_found(),
            },
            ("/stories", Some(page)) => {
                match request.url.param("k").and_then(|k| k.parse::<u32>().ok()) {
                    Some(k) if k >= 1 && k <= self.spec.story_pages => {
                        Response::html(self.stories_fragment(page, k))
                    }
                    _ => Response::not_found(),
                }
            }
            _ => Response::not_found(),
        }
    }

    fn name(&self) -> &str {
        "newsshare"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajax_dom::parse_document;

    fn server() -> NewsShareServer {
        NewsShareServer::new(NewsSpec::small(20))
    }

    #[test]
    fn page_parses_with_two_ajax_regions() {
        let s = server();
        let resp = s.handle(&Request::get("/news?p=3"));
        assert!(resp.is_ok());
        let mut doc = parse_document(&resp.body);
        assert!(doc.get_element_by_id("section_panel").is_some());
        assert!(doc.get_element_by_id("top_stories").is_some());
        assert!(resp.body.contains("fetchSection"));
        assert!(resp.body.contains("fetchStories"));
    }

    #[test]
    fn fragments_served() {
        let s = server();
        assert!(s.handle(&Request::get("/section?p=1&s=tech")).is_ok());
        assert!(s.handle(&Request::get("/stories?p=1&k=2")).is_ok());
        assert_eq!(s.handle(&Request::get("/section?p=1&s=bogus")).status, 404);
        assert_eq!(s.handle(&Request::get("/stories?p=1&k=0")).status, 404);
        assert_eq!(s.handle(&Request::get("/stories?p=1&k=99")).status, 404);
        assert_eq!(s.handle(&Request::get("/news?p=999")).status, 404);
    }

    #[test]
    fn deterministic_content() {
        let s = server();
        assert_eq!(
            s.handle(&Request::get("/news?p=5")),
            s.handle(&Request::get("/news?p=5"))
        );
        assert_ne!(
            s.spec().headline(1, "tech", 0),
            s.spec().headline(1, "world", 0)
        );
    }

    #[test]
    fn sections_differ_from_stories() {
        let s = server();
        assert_ne!(s.section_fragment(1, "tech"), s.stories_fragment(1, 1));
    }

    #[test]
    fn related_links_valid() {
        let spec = NewsSpec::small(20);
        for page in 0..20 {
            for rel in spec.related(page) {
                assert!(rel < 20);
                assert_ne!(rel, page);
            }
        }
    }

    #[test]
    fn story_nav_events_present() {
        let s = server();
        let frag = s.stories_fragment(1, 2);
        assert!(frag.contains("moreStories(1)"));
        assert!(frag.contains("moreStories(3)"));
    }
}
