//! # ajax-webgen
//!
//! **VidShare** — a deterministic, synthetic AJAX video-sharing site that
//! stands in for the 2008 YouTube the original *AJAX Crawl* evaluation ran
//! against. Every page, comment and related-video edge is a pure function of
//! `(spec.seed, video_id, …)`, which gives us:
//!
//! * the thesis' simplifying assumptions for free (snapshot isolation and
//!   server statelessness, §4.3),
//! * O(1) server memory regardless of site size,
//! * recomputable ground truth for the search-quality experiments
//!   (Table 7.4 / Fig 7.11) without storing 10 000 crawled pages.
//!
//! A watch page (`/watch?v=N`) contains the video title/description, a list
//! of hyperlinks to related videos (the traditional link graph the
//! precrawler walks) and an AJAX comment box: the first comment page is
//! inlined (what a JS-less browser sees — the *traditional* content), the
//! remaining pages load via an `XMLHttpRequest` in page JavaScript shaped
//! exactly like the thesis' YouTube excerpt (`showLoading` →
//! `getUrlXMLResponseAndFillDiv` → `urchinTracker`), including the property
//! the hot-node heuristic exploits: *next*, *prev* and direct page jumps all
//! funnel into one server-fetching function, so distinct events collide on
//! identical hot calls.

pub mod gallery;
pub mod news;
pub mod queries;
pub mod server;
pub mod spec;
pub mod text;

pub use gallery::{GalleryServer, GallerySpec};
pub use news::{NewsShareServer, NewsSpec};
pub use queries::{ground_truth, ground_truth_all, query_workload, GroundTruth, QuerySpec};
pub use server::VidShareServer;
pub use spec::{video_meta, VidShareSpec, VideoMeta};
