//! **Gallery** — a third synthetic AJAX application, built as the
//! evaluation target for the read/write-set static analysis.
//!
//! Where VidShare has one linear AJAX chain and NewsShare has a product
//! state space, Gallery is shaped like the sites that motivate *handler
//! equivalence classes*: an album page carries one productive AJAX region
//! (the photo hero, paged via `loadPhoto(k)`) surrounded by many
//! **redundant row handlers** — caption and tag rows whose `onclick`
//! handlers all instantiate the same function template with a different
//! index and rewrite their own row with content the server already
//! rendered. Firing any one of them proves the rest barren:
//!
//! * all `showCaption(i)` / `showTag(i)` bindings have isomorphic effect
//!   summaries (a single id-prefix DOM write keyed by the parameter), so
//!   they collapse into one equivalence class per state;
//! * the hero writes only `#hero`, disjoint from every `cap_*` / `tag_*`
//!   row, so the barren verdicts commute across photo transitions.
//!
//! The hero fragment for photo `k` links only to *other* photos
//! (constant-argument prev/next spans), so hero events are productive in
//! every state and never share a class verdict with the rows.

use crate::spec::VidShareSpec;
use crate::text;
use ajax_net::server::{Request, Response, Server};
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Parameters of a Gallery site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GallerySpec {
    pub seed: u64,
    /// Number of album pages.
    pub num_albums: u32,
    /// Photos per album (states reachable through the hero region).
    pub photos: u32,
    /// Redundant caption rows per album page.
    pub captions: u32,
    /// Redundant tag rows per album page.
    pub tags: u32,
    /// Hyperlinks to other albums.
    pub related_links: u32,
}

impl Default for GallerySpec {
    fn default() -> Self {
        Self {
            seed: 0xCAFE_D00D,
            num_albums: 300,
            photos: 4,
            captions: 8,
            tags: 6,
            related_links: 5,
        }
    }
}

impl GallerySpec {
    /// A small site for tests.
    pub fn small(num_albums: u32) -> Self {
        Self {
            num_albums,
            ..Self::default()
        }
    }

    /// The canonical URL of an album page.
    pub fn page_url(&self, album: u32) -> String {
        format!("http://gallery.example/album?a={album}")
    }

    fn text_spec(&self) -> VidShareSpec {
        VidShareSpec {
            seed: self.seed,
            showcase: false,
            ..VidShareSpec::default()
        }
    }

    /// Deterministic descriptive text for photo `k` of `album`.
    pub fn photo_text(&self, album: u32, k: u32) -> String {
        let spec = self.text_spec();
        let mut rng = spec.rng("gallery-photo", &[album as u64, k as u64]);
        let mut words = Vec::new();
        for _ in 0..rng.random_range(4..9usize) {
            words.push(text::VOCAB[rng.random_range(0..text::VOCAB.len())]);
        }
        format!("photo {k} of album {album}: {}", words.join(" "))
    }

    /// Related album ids.
    pub fn related(&self, album: u32) -> Vec<u32> {
        let spec = self.text_spec();
        let mut rng = spec.rng("gallery-related", &[album as u64]);
        let n = self.num_albums.max(1);
        let mut out = Vec::new();
        for _ in 0..self.related_links {
            let target = rng.random_range(0..n);
            if target != album && !out.contains(&target) {
                out.push(target);
            }
        }
        if out.is_empty() && n > 1 {
            out.push((album + 1) % n);
        }
        out
    }
}

/// The Gallery server.
#[derive(Debug, Clone)]
pub struct GalleryServer {
    spec: GallerySpec,
}

impl GalleryServer {
    /// Creates a server for `spec`.
    pub fn new(spec: GallerySpec) -> Self {
        Self { spec }
    }

    /// The site spec.
    pub fn spec(&self) -> &GallerySpec {
        &self.spec
    }

    /// Renders the hero fragment for photo `k`: the photo itself plus the
    /// prev/next controls. The controls carry constant arguments and never
    /// reference the photo currently shown, so every hero event leads
    /// somewhere else (or duplicates a previously seen state).
    pub fn photo_fragment(&self, album: u32, k: u32) -> String {
        let mut html = format!(
            "<p class=\"photo\">{}</p><div id=\"photo_nav\">",
            self.spec.photo_text(album, k)
        );
        if k > 0 {
            html.push_str(&format!(
                "<span class=\"pnav\" onclick=\"loadPhoto({})\">prev</span>",
                k - 1
            ));
        }
        if k + 1 < self.spec.photos {
            html.push_str(&format!(
                "<span class=\"pnav\" onclick=\"loadPhoto({})\">next</span>",
                k + 1
            ));
        }
        html.push_str("</div>");
        html
    }

    fn page_script(&self, album: u32) -> String {
        format!(
            r#"
function loadPhoto(i) {{
    var xhr = new XMLHttpRequest();
    xhr.open("GET", '/photo?a={album}&i=' + i, false);
    xhr.send(null);
    document.getElementById('hero').innerHTML = xhr.responseText;
}}
function showCaption(i) {{
    document.getElementById('cap_' + i).innerHTML = 'caption ' + i;
}}
function showTag(i) {{
    document.getElementById('tag_' + i).innerHTML = 'tag ' + i;
}}
"#
        )
    }

    /// Renders the full album page. The initial hero is exactly
    /// `photo_fragment(album, 0)`, and every caption/tag row is pre-filled
    /// with exactly what its handler writes — the rows are barren by
    /// construction, which is the ground truth the equivalence-pruning
    /// experiments check against.
    pub fn album_page(&self, album: u32) -> String {
        let spec = &self.spec;
        let mut captions = String::new();
        for i in 0..spec.captions {
            captions.push_str(&format!(
                "<div id=\"cap_{i}\" class=\"row\" onclick=\"showCaption({i})\">caption {i}</div>"
            ));
        }
        let mut tags = String::new();
        for i in 0..spec.tags {
            tags.push_str(&format!(
                "<span id=\"tag_{i}\" class=\"chip\" onclick=\"showTag({i})\">tag {i}</span>"
            ));
        }
        let mut related = String::new();
        for rel in spec.related(album) {
            related.push_str(&format!(
                "<li><a href=\"/album?a={rel}\">{}</a></li>",
                spec.photo_text(rel, 0)
            ));
        }
        format!(
            "<!DOCTYPE html>\n<html><head><title>Gallery album {album}</title>\
             <script type=\"text/javascript\">{script}</script></head>\
             <body>\
             <h1 id=\"masthead\">Gallery album {album}</h1>\
             <div id=\"hero\">{hero}</div>\
             <div id=\"captions\">{captions}</div>\
             <div id=\"tags\">{tags}</div>\
             <div id=\"related\"><ul>{related}</ul></div>\
             </body></html>",
            script = self.page_script(album),
            hero = self.photo_fragment(album, 0),
        )
    }
}

impl Server for GalleryServer {
    fn handle(&self, request: &Request) -> Response {
        let album: Option<u32> = request
            .url
            .param("a")
            .and_then(|a| a.parse().ok())
            .filter(|a| *a < self.spec.num_albums);
        match (request.url.path.as_str(), album) {
            ("/album", Some(album)) => Response::html(self.album_page(album)),
            ("/photo", Some(album)) => {
                match request.url.param("i").and_then(|i| i.parse::<u32>().ok()) {
                    Some(i) if i < self.spec.photos => {
                        Response::html(self.photo_fragment(album, i))
                    }
                    _ => Response::not_found(),
                }
            }
            _ => Response::not_found(),
        }
    }

    fn name(&self) -> &str {
        "gallery"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajax_dom::parse_document;

    fn server() -> GalleryServer {
        GalleryServer::new(GallerySpec::small(20))
    }

    #[test]
    fn page_parses_with_hero_and_rows() {
        let s = server();
        let resp = s.handle(&Request::get("/album?a=3"));
        assert!(resp.is_ok());
        let mut doc = parse_document(&resp.body);
        assert!(doc.get_element_by_id("hero").is_some());
        assert!(doc.get_element_by_id("cap_0").is_some());
        assert!(doc.get_element_by_id("tag_0").is_some());
        assert!(resp.body.contains("loadPhoto"));
        assert!(resp.body.contains("showCaption"));
    }

    #[test]
    fn initial_hero_is_exactly_photo_zero_fragment() {
        let s = server();
        let page = s.album_page(3);
        assert!(page.contains(&format!(
            "<div id=\"hero\">{}</div>",
            s.photo_fragment(3, 0)
        )));
    }

    #[test]
    fn rows_are_prefilled_with_handler_output() {
        let s = server();
        let page = s.album_page(1);
        for i in 0..s.spec().captions {
            assert!(page.contains(&format!(">caption {i}</div>")));
        }
        for i in 0..s.spec().tags {
            assert!(page.contains(&format!(">tag {i}</span>")));
        }
    }

    #[test]
    fn fragments_served() {
        let s = server();
        assert!(s.handle(&Request::get("/photo?a=1&i=2")).is_ok());
        assert_eq!(s.handle(&Request::get("/photo?a=1&i=99")).status, 404);
        assert_eq!(s.handle(&Request::get("/photo?a=99&i=0")).status, 404);
        assert_eq!(s.handle(&Request::get("/album?a=999")).status, 404);
        assert_eq!(s.handle(&Request::get("/bogus")).status, 404);
    }

    #[test]
    fn nav_links_other_photos_only() {
        let s = server();
        let frag = s.photo_fragment(1, 1);
        assert!(frag.contains("loadPhoto(0)"));
        assert!(frag.contains("loadPhoto(2)"));
        assert!(!frag.contains("loadPhoto(1)"));
        assert!(!s.photo_fragment(1, 0).contains("prev"));
        let last = s.spec().photos - 1;
        assert!(!s.photo_fragment(1, last).contains("next"));
    }

    #[test]
    fn deterministic_content() {
        let s = server();
        assert_eq!(
            s.handle(&Request::get("/album?a=5")),
            s.handle(&Request::get("/album?a=5"))
        );
        assert_ne!(s.spec().photo_text(1, 0), s.spec().photo_text(1, 1));
    }

    #[test]
    fn related_links_valid() {
        let spec = GallerySpec::small(20);
        for album in 0..20 {
            for rel in spec.related(album) {
                assert!(rel < 20);
                assert_ne!(rel, album);
            }
        }
    }
}
