//! The query workload (Table 7.4: "the most popular YouTube queries…
//! 100 queries in total") and recomputable ground truth for the
//! search-quality experiments.

use crate::spec::{video_meta, VidShareSpec};
use crate::text::comment_text;
use serde::{Deserialize, Serialize};

/// The 100-query workload. The first eleven are the paper's Table 7.4 sample
/// (in its cardinality order); the rest are additional popular-query-style
/// phrases. The phrase *rank* here drives the Zipf injection frequency in
/// `text::comment_text`, so workload cardinalities decrease with rank just
/// like in the paper.
pub fn query_phrases() -> &'static [&'static str] {
    &[
        // Table 7.4 sample (paper order = cardinality order).
        "wow",
        "dance",
        "funny",
        "our song",
        "sexy can i",
        "american idol",
        "kiss",
        "fight",
        "no air",
        "chris brown",
        "low",
        // Filled up to 100 in decreasing intended popularity.
        "guitar hero",
        "best ever",
        "so cool",
        "music video",
        "live concert",
        "epic fail",
        "cute cat",
        "skate trick",
        "free hugs",
        "love this",
        "drum solo",
        "beat box",
        "magic trick",
        "card trick",
        "street dance",
        "break dance",
        "salsa steps",
        "piano cover",
        "violin solo",
        "opera voice",
        "rock anthem",
        "pop idol",
        "rap battle",
        "freestyle flow",
        "country road",
        "blues night",
        "jazz club",
        "disco fever",
        "techno beat",
        "house party",
        "summer hit",
        "winter song",
        "spring vibe",
        "autumn leaves",
        "morning run",
        "night drive",
        "road trip",
        "city lights",
        "beach waves",
        "mountain air",
        "space walk",
        "moon landing",
        "deep sea",
        "wild life",
        "baby laugh",
        "dog skate",
        "parrot talks",
        "horse jump",
        "goal replay",
        "match highlights",
        "final whistle",
        "penalty shot",
        "slam dunk",
        "home run",
        "touch down",
        "knockout punch",
        "title fight",
        "speed run",
        "lap record",
        "drift king",
        "bike stunt",
        "ski jump",
        "surf wave",
        "snow board",
        "ice dance",
        "figure skate",
        "gym workout",
        "yoga flow",
        "study music",
        "sleep sounds",
        "rain sounds",
        "thunder storm",
        "camp fire",
        "cook show",
        "cake recipe",
        "pizza dough",
        "secret sauce",
        "movie trailer",
        "season finale",
        "plot twist",
        "behind scenes",
        "blooper reel",
        "voice over",
        "stand up",
        "sketch comedy",
        "prank call",
        "hidden camera",
        "time lapse",
        "slow motion",
    ]
}

/// One workload query with its rank.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuerySpec {
    pub id: usize,
    pub text: String,
    /// The individual conjunction terms.
    pub terms: Vec<String>,
}

/// Builds the full 100-query workload.
pub fn query_workload() -> Vec<QuerySpec> {
    query_phrases()
        .iter()
        .enumerate()
        .map(|(id, text)| QuerySpec {
            id,
            text: (*text).to_string(),
            terms: text.split_whitespace().map(str::to_string).collect(),
        })
        .collect()
}

/// Ground truth for one query over a site prefix.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Number of videos whose *first comment page* state (title +
    /// description + page-1 comments) matches the conjunction — what
    /// traditional search can find (Table 7.4 col. 3).
    pub first_page_videos: u32,
    /// Total number of individual comments (over all comment pages) whose
    /// text matches the conjunction (Table 7.4 col. 4).
    pub all_page_comments: u32,
    /// Number of (video, state) pairs matching the conjunction when states
    /// up to `max_state` are indexed — the RelRecall numerator/denominator
    /// source for Fig 7.11. Index `s` holds the count for `max_state = s+1`.
    pub state_matches_by_depth: Vec<u32>,
}

/// True when every term occurs as a whole word in `text` (boolean
/// conjunction, case-insensitive ASCII).
pub fn matches_conjunction(text: &str, terms: &[String]) -> bool {
    terms.iter().all(|t| contains_word(text, t))
}

fn contains_word(text: &str, word: &str) -> bool {
    text.split(|c: char| !c.is_alphanumeric())
        .any(|w| w.eq_ignore_ascii_case(word))
}

/// Renders the text of one application state exactly as the crawler's DOM
/// sees it: the full watch page with the comment box holding `page`'s
/// fragment (so titles, descriptions, uploader names and related-video
/// anchor text are all part of every state, like on the real site).
pub fn state_text(server: &crate::VidShareServer, video: u32, page: u32) -> String {
    let mut doc = ajax_dom::parse_document(&server.watch_page(video));
    if page > 1 {
        if let Some(id) = doc.get_element_by_id("recent_comments") {
            doc.set_inner_html(id, &server.comments_fragment(video, page));
        }
    }
    doc.document_text()
}

/// Scans the first `num_videos` videos of `spec` and computes ground truth
/// for every query in `queries`, considering comment pages up to
/// `max_pages` (the crawl cap). State texts are rendered once per
/// `(video, page)` and tested against all queries.
pub fn ground_truth_all(
    spec: &VidShareSpec,
    num_videos: u32,
    max_pages: u32,
    queries: &[QuerySpec],
) -> Vec<GroundTruth> {
    let server = crate::VidShareServer::new(spec.clone());
    let mut truths: Vec<GroundTruth> = queries
        .iter()
        .map(|_| GroundTruth {
            state_matches_by_depth: vec![0; max_pages as usize],
            ..GroundTruth::default()
        })
        .collect();
    for video in 0..num_videos {
        let meta = video_meta(spec, video);
        let pages = meta.comment_pages.min(max_pages);
        for page in 1..=pages {
            // Per-comment counts (Table 7.4 col. 4) use the raw comment text.
            for slot in 0..spec.comments_per_page {
                let comment = comment_text(spec, video, page, slot);
                for (query, truth) in queries.iter().zip(truths.iter_mut()) {
                    if matches_conjunction(&comment, &query.terms) {
                        truth.all_page_comments += 1;
                    }
                }
            }
            // State-level matches use the full rendered state text.
            let text = state_text(&server, video, page);
            for (query, truth) in queries.iter().zip(truths.iter_mut()) {
                if matches_conjunction(&text, &query.terms) {
                    if page == 1 {
                        truth.first_page_videos += 1;
                    }
                    for d in (page as usize - 1)..max_pages as usize {
                        truth.state_matches_by_depth[d] += 1;
                    }
                }
            }
        }
    }
    truths
}

/// Ground truth for a single query (see [`ground_truth_all`]).
pub fn ground_truth(
    spec: &VidShareSpec,
    num_videos: u32,
    max_pages: u32,
    query: &QuerySpec,
) -> GroundTruth {
    ground_truth_all(spec, num_videos, max_pages, std::slice::from_ref(query))
        .pop()
        .expect("one query in, one truth out")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_has_100_unique_queries() {
        let w = query_workload();
        assert_eq!(w.len(), 100);
        let unique: std::collections::HashSet<_> = w.iter().map(|q| &q.text).collect();
        assert_eq!(unique.len(), 100);
        assert_eq!(w[0].text, "wow");
        assert_eq!(w[3].terms, vec!["our", "song"]);
    }

    #[test]
    fn conjunction_matching_is_word_based() {
        assert!(matches_conjunction(
            "i love our new song",
            &["our".into(), "song".into()]
        ));
        assert!(!matches_conjunction(
            "oursong is here",
            &["our".into(), "song".into()]
        ));
        assert!(matches_conjunction("WOW amazing", &["wow".into()]));
        assert!(!matches_conjunction("wowza", &["wow".into()]));
    }

    #[test]
    fn ground_truth_counts_grow_with_depth() {
        let spec = VidShareSpec::small(150);
        let q = &query_workload()[0]; // "wow" — most frequent
        let truth = ground_truth(&spec, 150, 11, q);
        assert!(truth.all_page_comments > 0, "'wow' must occur somewhere");
        assert!(truth.first_page_videos > 0);
        // Monotone in depth.
        for w in truth.state_matches_by_depth.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // Deeper indexes find strictly more than depth 1 on a 150-video site.
        assert!(
            truth.state_matches_by_depth[10] > truth.state_matches_by_depth[0],
            "AJAX crawling must improve recall: {:?}",
            truth.state_matches_by_depth
        );
    }

    #[test]
    fn popular_queries_have_higher_cardinality() {
        let spec = VidShareSpec::small(200);
        let w = query_workload();
        let top = ground_truth(&spec, 200, 11, &w[0]).all_page_comments;
        let tail = ground_truth(&spec, 200, 11, &w[90]).all_page_comments;
        assert!(top > tail, "rank 0 ({top}) should beat rank 90 ({tail})");
    }

    #[test]
    fn showcase_queries_resolve() {
        let spec = VidShareSpec::small(10);
        // Q2: "morcheeba mysterious video" — findable only beyond page 1.
        let q2 = QuerySpec {
            id: 900,
            text: "morcheeba mysterious video".into(),
            terms: vec!["morcheeba".into(), "mysterious".into(), "video".into()],
        };
        let truth = ground_truth(&spec, 1, 11, &q2);
        assert_eq!(truth.first_page_videos, 0, "not on the first page");
        assert!(
            truth.state_matches_by_depth[10] >= 1,
            "found with AJAX states"
        );
    }
}
