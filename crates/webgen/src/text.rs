//! Deterministic text generation: video titles, descriptions and comments.
//!
//! Comment text is a bag of Zipf-weighted filler words into which workload
//! query phrases are injected at a configurable rate — giving the
//! search-quality experiments (Table 7.4, Fig 7.11) a realistic, *countable*
//! keyword distribution.

use crate::queries::query_phrases;
use crate::spec::VidShareSpec;
use rand::rngs::StdRng;
use rand::RngExt;

/// Filler vocabulary, ordered by intended popularity (Zipf rank 0 = most
/// frequent). 2008-YouTube-comment flavoured.
pub const VOCAB: &[&str] = &[
    "the",
    "this",
    "is",
    "so",
    "i",
    "love",
    "it",
    "best",
    "video",
    "ever",
    "great",
    "song",
    "music",
    "haha",
    "lol",
    "cool",
    "nice",
    "awesome",
    "omg",
    "really",
    "good",
    "like",
    "you",
    "me",
    "we",
    "they",
    "one",
    "first",
    "time",
    "watch",
    "again",
    "cant",
    "stop",
    "listening",
    "amazing",
    "epic",
    "wow",
    "see",
    "live",
    "show",
    "concert",
    "band",
    "beat",
    "drums",
    "guitar",
    "voice",
    "sound",
    "quality",
    "part",
    "favorite",
    "always",
    "never",
    "forget",
    "remember",
    "back",
    "days",
    "old",
    "school",
    "new",
    "just",
    "found",
    "channel",
    "subscribe",
    "please",
    "more",
    "videos",
    "upload",
    "thanks",
    "sharing",
    "who",
    "else",
    "watching",
    "year",
    "club",
    "anyone",
    "here",
    "from",
    "comments",
    "section",
    "page",
    "next",
    "wait",
    "what",
    "happened",
    "end",
    "beginning",
    "middle",
    "funny",
    "laugh",
    "cried",
    "tears",
    "joy",
    "happy",
    "sad",
    "mood",
    "vibe",
    "chill",
    "relax",
    "study",
    "work",
    "gym",
    "run",
    "dance",
    "moves",
    "steps",
    "choreo",
    "singer",
    "sings",
    "sang",
    "lyrics",
    "words",
    "meaning",
    "deep",
    "true",
    "real",
    "fake",
    "cover",
    "original",
    "version",
    "remix",
    "better",
    "worse",
    "than",
    "radio",
    "play",
    "played",
    "playing",
    "repeat",
    "loop",
    "hours",
    "minutes",
    "seconds",
    "legend",
    "legendary",
    "icon",
    "iconic",
    "masterpiece",
    "art",
    "artist",
    "talent",
    "talented",
    "gifted",
    "skill",
    "skills",
    "pro",
    "professional",
    "beginner",
    "learn",
    "learned",
    "teach",
    "tutorial",
    "how",
    "did",
    "make",
    "made",
    "making",
    "camera",
    "edit",
    "editing",
    "effects",
    "light",
    "lights",
    "color",
    "colors",
    "scene",
    "scenes",
    "actor",
    "actress",
    "movie",
    "film",
    "trailer",
    "episode",
    "series",
    "season",
    "finale",
    "ending",
    "spoiler",
    "alert",
    "warning",
    "careful",
    "attention",
    "look",
    "looking",
    "looks",
    "beautiful",
    "gorgeous",
    "stunning",
    "pretty",
    "cute",
    "adorable",
    "sweet",
    "kind",
    "gentle",
    "strong",
    "power",
    "powerful",
    "energy",
    "energetic",
    "hype",
    "hyped",
    "excited",
    "exciting",
    "bored",
    "boring",
    "interesting",
    "curious",
    "question",
    "answer",
    "why",
    "where",
    "when",
    "which",
    "whose",
    "because",
    "reason",
    "point",
    "idea",
    "thought",
    "think",
    "thinking",
    "feel",
    "feeling",
    "feels",
    "heart",
    "soul",
    "mind",
    "brain",
    "head",
    "hands",
    "clap",
    "clapping",
    "applause",
    "crowd",
    "audience",
    "fans",
    "fan",
    "supporter",
    "support",
    "keep",
    "going",
    "come",
    "coming",
    "came",
    "went",
    "gone",
    "leave",
    "stay",
    "moment",
    "moments",
    "memory",
    "memories",
    "childhood",
    "grew",
    "grow",
    "family",
    "friends",
    "friend",
    "brother",
    "sister",
    "mom",
    "dad",
    "home",
    "house",
    "room",
    "car",
    "road",
    "trip",
    "travel",
    "world",
    "country",
    "city",
    "town",
    "street",
    "summer",
    "winter",
    "spring",
    "autumn",
    "night",
    "day",
    "morning",
    "evening",
    "today",
    "tomorrow",
    "yesterday",
    "week",
    "month",
    "hope",
    "wish",
    "dream",
    "dreams",
    "goal",
    "goals",
    "win",
    "winner",
    "winning",
    "lose",
    "loser",
    "lost",
    "game",
    "games",
    "player",
    "players",
    "team",
    "teams",
    "match",
    "score",
    "goalie",
    "kick",
    "ball",
    "field",
    "court",
    "ring",
    "fight",
    "fighter",
    "boxing",
    "punch",
    "round",
    "champion",
    "title",
    "belt",
    "king",
    "queen",
    "prince",
    "princess",
    "star",
    "stars",
    "sky",
    "moon",
    "sun",
    "light",
    "dark",
    "darkness",
    "shadow",
    "fire",
    "water",
    "earth",
    "air",
    "wind",
    "storm",
    "rain",
    "snow",
    "ice",
    "cold",
    "hot",
    "warm",
];

/// Pools used for video titles.
const ARTISTS: &[&str] = &[
    "morcheeba",
    "skyline",
    "the",
    "neon",
    "river",
    "echo",
    "velvet",
    "crimson",
    "silver",
    "golden",
    "midnight",
    "electric",
    "cosmic",
    "urban",
    "wild",
    "lunar",
    "solar",
    "crystal",
    "shadow",
    "thunder",
];
const ARTIST_SUFFIX: &[&str] = &[
    "waves", "lights", "hearts", "riders", "kids", "souls", "birds", "wolves", "tigers", "foxes",
    "queens", "kings", "dreamers", "rebels", "angels", "ghosts", "pilots", "sailors", "dancers",
    "drifters",
];
const TOPICS: &[&str] = &[
    "enjoy",
    "forever",
    "tonight",
    "yesterday",
    "sunrise",
    "sunset",
    "horizon",
    "gravity",
    "velocity",
    "paradise",
    "wonder",
    "mystery",
    "journey",
    "freedom",
    "silence",
    "thunder",
    "lightning",
    "ocean",
    "desert",
    "mountain",
];
const FORMS: &[&str] = &[
    "official video",
    "live performance",
    "acoustic session",
    "music video",
    "lyric video",
    "full concert",
    "behind the scenes",
    "interview",
    "dance cover",
    "guitar tutorial",
    "drum cover",
    "piano version",
    "remix",
    "mashup",
    "reaction",
    "compilation",
    "highlights",
    "trailer",
    "episode one",
    "documentary",
];
const UPLOADERS: &[&str] = &[
    "musicfan88",
    "veejay",
    "clipmaster",
    "studio54",
    "indiehead",
    "bassline",
    "drumroll",
    "vinyljunkie",
    "concertgoer",
    "roadie",
    "mixtape",
    "headphones",
    "subwoofer",
    "treble",
    "falsetto",
];

/// Samples a filler word with Zipf(1.0) rank weighting.
fn filler_word(rng: &mut StdRng) -> &'static str {
    // Inverse-CDF free sampling: u^k concentrates on small ranks.
    let u: f64 = rng.random_range(0.0..1.0);
    let rank = ((VOCAB.len() as f64).powf(u) - 1.0) as usize;
    VOCAB[rank.min(VOCAB.len() - 1)]
}

/// Generates `(title, description, uploader)` for a non-showcase video.
pub fn video_text(spec: &VidShareSpec, id: u32, rng: &mut StdRng) -> (String, String, String) {
    let _ = spec;
    let artist = format!(
        "{} {}",
        ARTISTS[rng.random_range(0..ARTISTS.len())],
        ARTIST_SUFFIX[rng.random_range(0..ARTIST_SUFFIX.len())]
    );
    let title = format!(
        "{} {} {}",
        artist,
        TOPICS[rng.random_range(0..TOPICS.len())],
        FORMS[rng.random_range(0..FORMS.len())]
    );
    let mut description = String::new();
    for i in 0..rng.random_range(8..20) {
        if i > 0 {
            description.push(' ');
        }
        description.push_str(filler_word(rng));
    }
    let uploader = format!(
        "{}{}",
        UPLOADERS[rng.random_range(0..UPLOADERS.len())],
        id % 1000
    );
    (title, description, uploader)
}

/// The showcase comments of §1.1 (video 0). Page 2 carries the information
/// that only AJAX search can reach: the "mysterious video" phrasing (query
/// Q2) and the new singer's name (query Q3).
fn showcase_comment(page: u32, slot: u32) -> Option<String> {
    match (page, slot) {
        (1, 0) => Some("first comment! enjoy the ride is such a great song".into()),
        (1, 1) => Some("saw them live last month, the show was amazing".into()),
        (2, 0) => {
            Some("this mysterious video is their best work, morcheeba never disappoints".into())
        }
        (2, 1) => Some("the new singer on enjoy the ride is daisy martey, what a voice".into()),
        (3, 0) => Some("still watching this in 2008, a timeless classic".into()),
        _ => None,
    }
}

/// Generates the text of one comment, injecting a workload query phrase with
/// probability `spec.phrase_rate`. Pure function of `(spec, video, page,
/// slot)` — the ground-truth scanner regenerates exactly this text.
pub fn comment_text(spec: &VidShareSpec, video: u32, page: u32, slot: u32) -> String {
    if spec.showcase && video == 0 {
        if let Some(text) = showcase_comment(page, slot) {
            return text;
        }
    }
    let mut rng = spec.rng("comment", &[video as u64, page as u64, slot as u64]);
    let length = rng.random_range(6..18usize);
    let mut words: Vec<&str> = (0..length).map(|_| filler_word(&mut rng)).collect();

    if rng.random_range(0.0..1.0) < spec.phrase_rate {
        let phrases = query_phrases();
        // Zipf over the query ranks, so Table 7.4's cardinality ordering holds.
        let u: f64 = rng.random_range(0.0..1.0);
        let rank = ((phrases.len() as f64).powf(u) - 1.0) as usize;
        let phrase = phrases[rank.min(phrases.len() - 1)];
        let insert_at = rng.random_range(0..=words.len());
        for (offset, word) in phrase.split_whitespace().enumerate() {
            words.insert((insert_at + offset).min(words.len()), word);
        }
    }
    words.join(" ")
}

/// The author handle of a comment.
pub fn comment_author(spec: &VidShareSpec, video: u32, page: u32, slot: u32) -> String {
    let mut rng = spec.rng("author", &[video as u64, page as u64, slot as u64]);
    format!(
        "{}{}",
        UPLOADERS[rng.random_range(0..UPLOADERS.len())],
        rng.random_range(0..10_000u32)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comment_text_is_deterministic() {
        let spec = VidShareSpec::default();
        assert_eq!(comment_text(&spec, 5, 2, 3), comment_text(&spec, 5, 2, 3));
        assert_ne!(comment_text(&spec, 5, 2, 3), comment_text(&spec, 5, 2, 4));
    }

    #[test]
    fn showcase_comments_planted() {
        let spec = VidShareSpec::default();
        assert!(comment_text(&spec, 0, 2, 0).contains("mysterious"));
        assert!(comment_text(&spec, 0, 2, 1).contains("singer"));
        assert!(comment_text(&spec, 0, 2, 1).contains("daisy martey"));
    }

    #[test]
    fn phrases_get_injected_at_roughly_the_configured_rate() {
        let spec = VidShareSpec {
            showcase: false,
            phrase_rate: 0.5,
            ..VidShareSpec::default()
        };
        let phrases = query_phrases();
        let mut hits = 0;
        let total = 400;
        for slot in 0..total {
            let text = comment_text(&spec, 7, 1, slot);
            if phrases.iter().any(|p| {
                p.split_whitespace()
                    .all(|w| text.split_whitespace().any(|t| t == w))
            }) {
                hits += 1;
            }
        }
        // Injection rate 0.5 plus organic occurrences ⇒ comfortably over 30 %.
        assert!(
            hits > total * 3 / 10,
            "only {hits}/{total} comments carry a phrase"
        );
    }

    #[test]
    fn filler_words_zipf_shaped() {
        let spec = VidShareSpec::default();
        let mut rng = spec.rng("test", &[1]);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..5_000 {
            *counts.entry(filler_word(&mut rng)).or_insert(0u32) += 1;
        }
        let top = counts.get("the").copied().unwrap_or(0);
        let rare: u32 = counts.get("warm").copied().unwrap_or(0);
        assert!(top > rare * 3, "head word {top} vs tail word {rare}");
    }

    #[test]
    fn titles_vary() {
        let spec = VidShareSpec {
            showcase: false,
            ..VidShareSpec::default()
        };
        let mut rng1 = spec.rng("video-meta", &[1]);
        let mut rng2 = spec.rng("video-meta", &[2]);
        let (t1, _, _) = video_text(&spec, 1, &mut rng1);
        let (t2, _, _) = video_text(&spec, 2, &mut rng2);
        assert_ne!(t1, t2);
    }
}
