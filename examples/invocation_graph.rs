//! The JavaScript invocation graph of §4.1, computed statically from a
//! fetched page: functions, call edges, hot nodes, and the classification
//! of every event binding into network / non-network — the contents of the
//! thesis' Fig 4.1 and Tables 4.1–4.3, for both synthetic sites.
//!
//! ```sh
//! cargo run --release --example invocation_graph
//! ```

use ajax_crawl::analysis::analyze_page;
use ajax_net::server::{Request, Server};
use ajax_webgen::{NewsShareServer, NewsSpec, VidShareServer, VidShareSpec};

fn show(site: &str, html: &str) {
    let analysis = analyze_page(html);
    println!("=== {site} ===");
    println!("functions:");
    for f in analysis.graph.functions() {
        let marker = if f.direct_ajax { "  [HOT NODE]" } else { "" };
        let calls: Vec<&str> = f.calls.iter().map(String::as_str).collect();
        println!(
            "  {}({}) -> {:?}{marker}",
            f.name,
            f.params.join(", "),
            calls
        );
    }
    println!("hot nodes: {:?}", analysis.graph.hot_nodes());
    let reach = analysis.graph.reaches_network();
    println!("functions reaching the network: {reach:?}");
    println!("event bindings:");
    for binding in &analysis.bindings {
        println!(
            "  {:<11} on {:<18} {:<28} {}",
            binding.event_type.to_string(),
            binding.source,
            binding.code,
            if analysis.binding_reaches_network(binding) {
                "-> network"
            } else {
                "-> local only"
            }
        );
    }
    println!("\ndot graph:\n{}", analysis.graph.to_dot());
}

fn main() {
    let vid = VidShareServer::new(VidShareSpec::small(10));
    let spec = VidShareSpec::small(10);
    let video = (0..10)
        .find(|&v| ajax_webgen::video_meta(&spec, v).comment_pages >= 2)
        .unwrap_or(0);
    show(
        "VidShare watch page (YouTube-like, 1 hot node)",
        &vid.handle(&Request::get(format!("/watch?v={video}").as_str()))
            .body,
    );

    let news = NewsShareServer::new(NewsSpec::small(10));
    show(
        "NewsShare front page (2 hot nodes)",
        &news.handle(&Request::get("/news?p=1")).body,
    );
}
