//! Concurrent query serving with `ajax-serve`.
//!
//! Builds a small VidShare index, turns it into an in-process
//! [`ShardServer`] (one worker pool per shard), then fires 1 000 queries
//! from 8 client threads — a mix of repeated hot queries (exercising the
//! LRU result cache) and the thesis' 100-query workload — and prints the
//! server's metrics snapshot.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use ajax_engine::{AjaxSearchEngine, EngineConfig};
use ajax_net::Url;
use ajax_serve::{ServeConfig, ServeError};
use ajax_webgen::queries::query_phrases;
use ajax_webgen::{VidShareServer, VidShareSpec};
use std::sync::Arc;

const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 125; // 8 × 125 = 1 000 queries total

fn main() {
    // Build the index: 60 videos, AJAX crawl, per-partition shards.
    let spec = VidShareSpec::small(60);
    let start = Url::parse(&spec.watch_url(0));
    let site = Arc::new(VidShareServer::new(spec));
    let engine = AjaxSearchEngine::build(site, &start, EngineConfig::ajax(60));
    println!(
        "index: {} pages, {} states, {} shards",
        engine.report.pages_crawled, engine.report.total_states, engine.report.shards
    );

    // Start the server in-process: 2 workers per shard, result cache on,
    // admission capped at 32 concurrent queries.
    let server = Arc::new(
        engine.into_server(
            ServeConfig::default()
                .with_workers_per_shard(2)
                .with_cache_capacity(128)
                .with_max_in_flight(32),
        ),
    );
    println!(
        "server: {} workers over {} shards\n",
        server.worker_count(),
        server.shard_count()
    );

    // 8 closed-loop clients; each cycles through the 100-query workload at
    // its own offset, so popular queries repeat across clients and the
    // cache gets real hits.
    let workload = query_phrases();
    let t0 = std::time::Instant::now();
    let (answered, shed) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let server = Arc::clone(&server);
                scope.spawn(move || {
                    let mut answered = 0u64;
                    let mut shed = 0u64;
                    for i in 0..QUERIES_PER_CLIENT {
                        let q = workload[(c * 13 + i) % workload.len()];
                        match server.search(q) {
                            Ok(_) => answered += 1,
                            Err(ServeError::Overloaded { .. }) => shed += 1,
                            Err(e) => panic!("unexpected serve error: {e}"),
                        }
                    }
                    (answered, shed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .fold((0u64, 0u64), |(a, s), (ca, cs)| (a + ca, s + cs))
    });
    let elapsed = t0.elapsed();

    println!(
        "{} queries from {CLIENTS} clients in {:.1} ms ({} answered, {} shed, 0 lost)",
        CLIENTS * QUERIES_PER_CLIENT,
        elapsed.as_secs_f64() * 1e3,
        answered,
        shed,
    );

    println!("\nmetrics snapshot:\n{}", server.metrics_json());
}
