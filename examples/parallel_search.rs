//! Parallelized crawling and distributed query processing (thesis ch. 6).
//!
//! Runs the precrawl → partition → parallel-crawl pipeline with 1, 2, 4 and
//! 8 process lines on a 2-core machine model and reports the virtual
//! makespan, then demonstrates query shipping with the global-idf merge.
//!
//! ```sh
//! cargo run --release --example parallel_search
//! ```

use ajax_crawl::crawler::CrawlConfig;
use ajax_crawl::parallel::MpCrawler;
use ajax_crawl::partition::partition_urls;
use ajax_crawl::precrawl::Precrawler;
use ajax_engine::{AjaxSearchEngine, EngineConfig};
use ajax_net::{LatencyModel, Server, Url};
use ajax_webgen::{VidShareServer, VidShareSpec};
use std::sync::Arc;

fn main() {
    let spec = VidShareSpec::small(120);
    let start = Url::parse(&spec.watch_url(0));
    let server: Arc<VidShareServer> = Arc::new(VidShareServer::new(spec));

    // Phase 1+2: precrawl & partition (shared by every run).
    let mut pre = Precrawler::new(
        Arc::clone(&server) as Arc<dyn Server>,
        LatencyModel::thesis_default(11),
    );
    let graph = pre.run(&start, 120);
    let partitions = partition_urls(&graph.urls, 10);
    println!(
        "precrawl: {} pages, {} partitions of ≤10 URLs\n",
        graph.len(),
        partitions.len()
    );

    println!("{:>6} {:>14} {:>10}", "lines", "makespan (s)", "speedup");
    for lines in [1usize, 2, 4, 8] {
        let mp = MpCrawler::new(
            Arc::clone(&server) as Arc<dyn Server>,
            LatencyModel::thesis_default(11),
            CrawlConfig::ajax(),
        )
        .with_proc_lines(lines)
        .with_cores(2);
        let report = mp.crawl(&partitions);
        println!(
            "{:>6} {:>14.2} {:>9.2}x",
            lines,
            report.virtual_makespan as f64 / 1e6,
            report.speedup()
        );
    }

    // Distributed query processing: one index per partition, global idf
    // computed at merge time.
    let engine = AjaxSearchEngine::build(
        server,
        &start,
        EngineConfig {
            partition_size: 10,
            ..EngineConfig::ajax(120)
        },
    );
    println!(
        "\nindex: {} shards, {} states total",
        engine.report.shards, engine.report.total_states
    );
    for query in ["wow", "our song", "american idol"] {
        let results = engine.search(query);
        let shards_hit: std::collections::BTreeSet<_> = results.iter().map(|r| r.shard).collect();
        println!(
            "query {query:?}: {} results merged from {} shard(s)",
            results.len(),
            shards_hit.len()
        );
    }
}
