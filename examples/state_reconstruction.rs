//! Result aggregation (thesis §5.4): a search result is a `(URL, state)`
//! pair, and the state must be *reconstructed* for presentation by replaying
//! the annotated event path from the initial state — fully offline, against
//! the responses recorded during crawling.
//!
//! ```sh
//! cargo run --release --example state_reconstruction
//! ```

use ajax_crawl::crawler::{CrawlConfig, Crawler};
use ajax_crawl::model::StateId;
use ajax_crawl::replay::reconstruct_state;
use ajax_index::aggregate::locate_terms;
use ajax_net::{LatencyModel, Url};
use ajax_webgen::{video_meta, VidShareServer, VidShareSpec};
use std::sync::Arc;

fn main() {
    let spec = VidShareSpec::small(50);
    // Pick a video with several comment pages.
    let video = (0..50)
        .find(|&v| video_meta(&spec, v).comment_pages >= 4)
        .expect("a multi-page video");
    let url = Url::parse(&spec.watch_url(video));
    let server = Arc::new(VidShareServer::new(spec));

    // Crawl with DOM storage (replay needs the page HTML + fetched bodies).
    let mut crawler = Crawler::new(
        server,
        LatencyModel::thesis_default(2),
        CrawlConfig::ajax().storing_dom(),
    );
    let page = crawler.crawl_page(&url).expect("crawl");
    let model = page.model;
    println!(
        "crawled {} -> {} states, {} transitions, {} recorded fetches\n",
        model.url,
        model.state_count(),
        model.transitions.len(),
        model.fetches.len()
    );

    // Show the event path and replay every state.
    for state in &model.states {
        let path = model.event_path(state.id).expect("reachable");
        let path_str = if path.is_empty() {
            "(initial state)".to_string()
        } else {
            path.iter()
                .map(|t| format!("{} on {}", t.event, t.source))
                .collect::<Vec<_>>()
                .join(" -> ")
        };
        let doc = reconstruct_state(&model, state.id).expect("replay");
        let ok = doc.content_hash() == state.hash;
        println!("state {}: replayed via {path_str}", state.id);
        println!(
            "   hash {:#018x}  match: {}",
            doc.content_hash(),
            if ok { "exact" } else { "DIVERGED" }
        );
        // First 70 chars of the comment area, as a user would see it.
        let text = doc.document_text();
        let snippet: String = text.chars().take(70).collect();
        println!("   text: {snippet}…");
        assert!(ok);
    }

    // Element-level presentation (§5.3): where inside the reconstructed
    // state does a query live?
    if let Some(hit_state) = model.states.iter().find(|s| s.id.0 > 0) {
        let doc = reconstruct_state(&model, hit_state.id).expect("replay");
        let probe = doc
            .document_text()
            .split_whitespace()
            .last()
            .unwrap_or("video")
            .to_string();
        println!("\nelement hits for {probe:?} in state {}:", hit_state.id);
        for hit in locate_terms(&doc, &probe).iter().take(3) {
            println!("   {}\n      {:?}", hit.path, hit.snippet);
        }
    }

    // The crawler never needs the live site again: replay state 2 once more.
    let again = reconstruct_state(&model, StateId(1.min(model.state_count() as u32 - 1)));
    println!(
        "\nreplay is repeatable offline: {}",
        if again.is_ok() { "ok" } else { "failed" }
    );
}
