//! Quickstart: build an AJAX search engine over a small synthetic VidShare
//! site and run a few queries.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ajax_engine::{AjaxSearchEngine, EngineConfig};
use ajax_net::Url;
use ajax_webgen::{VidShareServer, VidShareSpec};
use std::sync::Arc;

fn main() {
    // 1. A synthetic AJAX site (stands in for youtube.com ca. 2008).
    let spec = VidShareSpec::small(100);
    let start = Url::parse(&spec.watch_url(0));
    let server = Arc::new(VidShareServer::new(spec));

    // 2. Precrawl → partition → parallel AJAX crawl → index → broker.
    println!("building the AJAX search engine over 100 videos…");
    let engine = AjaxSearchEngine::build(server, &start, EngineConfig::ajax(100));

    let r = &engine.report;
    println!(
        "crawled {} pages into {} states ({} events fired, {} AJAX calls, {} served from hot-node cache)",
        r.pages_crawled, r.total_states, r.crawl.events_fired, r.crawl.ajax_network_calls, r.crawl.cache_hits,
    );
    println!(
        "virtual crawl time: serial {:.1} s, with 4 process lines {:.1} s\n",
        r.virtual_serial as f64 / 1e6,
        r.virtual_makespan as f64 / 1e6,
    );

    // 3. Search. Results are (URL, state) pairs: the state tells the engine
    //    *which comment page* of the video matched.
    for query in ["wow", "dance", "morcheeba mysterious video"] {
        let results = engine.search(query);
        println!("query {query:?}: {} results", results.len());
        for r in results.iter().take(3) {
            println!("   {:.4}  {}  state {}", r.score, r.url, r.doc.state);
        }
    }
}
