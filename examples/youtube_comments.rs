//! The motivating example of the thesis (§1.1): searching YouTube comments.
//!
//! Video 0 of the synthetic site is "Morcheeba Enjoy the Ride". Its first
//! comment page holds ordinary praise; page 2 — reachable only through AJAX
//! pagination events — reveals that the video is "mysterious" and names the
//! new singer. The example runs the thesis' three queries against both a
//! traditional and an AJAX index built over the *same* site.
//!
//! ```sh
//! cargo run --release --example youtube_comments
//! ```

use ajax_engine::{AjaxSearchEngine, EngineConfig};
use ajax_net::{Server, Url};
use ajax_webgen::{VidShareServer, VidShareSpec};
use std::sync::Arc;

fn main() {
    let spec = VidShareSpec::small(50);
    let start = Url::parse(&spec.watch_url(0));
    let server = Arc::new(VidShareServer::new(spec));

    println!("building TRADITIONAL index (JavaScript disabled, 1 state/page)…");
    let traditional = AjaxSearchEngine::build(
        Arc::clone(&server) as Arc<dyn Server>,
        &start,
        EngineConfig::traditional(50),
    );
    println!("building AJAX index (events crawled, all comment pages)…\n");
    let ajax = AjaxSearchEngine::build(server, &start, EngineConfig::ajax(50));

    let queries = [
        (
            "Q1",
            "morcheeba enjoy the ride",
            "title only — both engines find it",
        ),
        ("Q2", "morcheeba mysterious video", "needs comment page 2"),
        (
            "Q3",
            "morcheeba enjoy the ride singer",
            "title + page-2 comment",
        ),
    ];

    println!(
        "{:<4} {:<34} {:>12} {:>12}",
        "id", "query", "traditional", "ajax"
    );
    println!("{}", "-".repeat(66));
    for (id, query, _) in &queries {
        let t = traditional.search(query).len();
        let a = ajax.search(query).len();
        println!("{id:<4} {query:<34} {t:>12} {a:>12}");
    }
    println!();
    for (id, query, why) in &queries {
        let hits = ajax.search(query);
        match hits.first() {
            Some(top) => println!(
                "{id}: top AJAX hit {} state {}   ({why})",
                top.url, top.doc.state
            ),
            None => println!("{id}: no results ({why})"),
        }
    }
}
