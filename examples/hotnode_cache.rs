//! The hot-node heuristic in action (thesis ch. 4).
//!
//! Crawls the same videos with and without the hot-node policy and compares
//! AJAX network calls, network time and state throughput — the single-page
//! view of Figs. 7.5–7.7.
//!
//! ```sh
//! cargo run --release --example hotnode_cache
//! ```

use ajax_crawl::crawler::{CrawlConfig, Crawler, PageStats};
use ajax_net::{LatencyModel, Server, Url};
use ajax_webgen::{video_meta, VidShareServer, VidShareSpec};
use std::sync::Arc;

fn crawl_all(server: &Arc<VidShareServer>, n: u32, config: CrawlConfig) -> PageStats {
    let mut crawler = Crawler::new(
        Arc::clone(server) as Arc<dyn Server>,
        LatencyModel::thesis_default(5),
        config,
    );
    let mut total = PageStats::default();
    for v in 0..n {
        let url = Url::parse(&format!("http://vidshare.example/watch?v={v}"));
        let page = crawler.crawl_page(&url).expect("crawl");
        total.merge(&page.stats);
    }
    total
}

fn main() {
    let n = 40;
    let spec = VidShareSpec::small(n);
    let server = Arc::new(VidShareServer::new(spec.clone()));

    let multi: Vec<u32> = (0..n)
        .filter(|&v| video_meta(&spec, v).comment_pages > 1)
        .collect();
    println!(
        "{} videos, {} of them with >1 comment page\n",
        n,
        multi.len()
    );

    println!("crawling WITHOUT the hot-node policy (Alg. 3.1.1)…");
    let without = crawl_all(&server, n, CrawlConfig::ajax_no_cache());
    println!("crawling WITH the hot-node policy (Alg. 4.2.1)…\n");
    let with = crawl_all(&server, n, CrawlConfig::ajax());

    let fmt_s = |us: u64| format!("{:.2} s", us as f64 / 1e6);
    println!("{:<34} {:>14} {:>14}", "", "no caching", "hot-node cache");
    println!("{}", "-".repeat(64));
    println!(
        "{:<34} {:>14} {:>14}",
        "events fired", without.events_fired, with.events_fired
    );
    println!(
        "{:<34} {:>14} {:>14}",
        "AJAX calls hitting the network", without.ajax_network_calls, with.ajax_network_calls
    );
    println!(
        "{:<34} {:>14} {:>14}",
        "AJAX calls served from cache", without.cache_hits, with.cache_hits
    );
    println!(
        "{:<34} {:>14} {:>14}",
        "network time",
        fmt_s(without.network_micros),
        fmt_s(with.network_micros)
    );
    println!(
        "{:<34} {:>14} {:>14}",
        "total crawl time",
        fmt_s(without.crawl_micros),
        fmt_s(with.crawl_micros)
    );
    println!(
        "{:<34} {:>13.1}/s {:>13.1}/s",
        "state throughput",
        without.states as f64 / (without.crawl_micros as f64 / 1e6),
        with.states as f64 / (with.crawl_micros as f64 / 1e6)
    );
    println!(
        "\nnetwork-call reduction: {:.2}x  (thesis reports ~5x on YouTube100)",
        without.ajax_network_calls as f64 / with.ajax_network_calls.max(1) as f64
    );
    assert_eq!(
        without.states, with.states,
        "the cache must never change the discovered states"
    );
}
